//! # rpq-engine — parallel batch query engine
//!
//! The paper (Fan et al., ICDE 2011) evaluates RQs and PQs one at a time;
//! this crate is the serving layer that amortizes shared work across
//! *batches* of concurrent queries against one immutable graph:
//!
//! * [`QueryEngine`] owns an `Arc<Graph>` plus lazily-built shared indices
//!   (the per-color [`DistanceMatrix`](rpq_graph::DistanceMatrix) when the
//!   graph is small enough to afford its O(|Σ|·|V|²) footprint);
//! * a [`planner`] picks the evaluation strategy per query — **DM** matrix
//!   probes, **hop** labels, **sharded** labels, **biBFS**
//!   meet-in-the-middle, or memoized **BFS** for RQs;
//!   `JoinMatch`/`SplitMatch` over the matrix, hop-label, sharded or
//!   cached backend for PQs (backend by index availability, algorithm
//!   by pattern shape) — replacing the hard-picked strategy calls in
//!   `rpq_core::rq`;
//! * a concurrent semantic [`memo`] table keyed on `(source predicate,
//!   canonical regex)` shares product-automaton reach sets: queries are
//!   rewritten into run-normal canonical form before planning so
//!   syntactic variants share one cell, and on an exact miss the
//!   [`SemanticMemo`] looks for a cached *containing* entry
//!   (wider predicate or containing regex) and derives the answer by
//!   filtering/re-verifying the cached reach set instead of
//!   re-traversing the graph;
//! * [`BatchResult`] carries per-query outputs, chosen plans and timings
//!   for the bench harness;
//! * [`ShardedEngine`] serves graphs past any single-index budget: the
//!   storage→index→engine stack re-founded on a shard topology (per-shard
//!   label builds on a per-shard worker set, boundary-overlay stitching),
//!   scatter-gathering batches with answers bit-identical to every other
//!   backend; the [`QueryEngine`] reaches the same index as a background
//!   fallback when its single hop-label build busts the budget;
//! * [`UpdatableEngine`] serves a *mutating* graph (§7): writers apply
//!   [`Update`](rpq_core::incremental::Update) batches and publish
//!   immutable versioned [`Snapshot`]s via an `Arc` swap, readers query a
//!   pinned snapshot without ever blocking on writers, indices are
//!   versioned per snapshot, and registered standing PQs are maintained
//!   incrementally and served from their standing answers
//!   ([`Plan::PqStanding`]) instead of being re-evaluated;
//! * [`QueryService`] unifies the four engine types behind one
//!   object-safe trait — the boundary the `rpq-server` front-end and the
//!   bench harness program against — with boundary failures surfaced as
//!   typed [`EngineError`] values instead of panics.
//!
//! Workers are plain `std::thread::scope` scoped threads pulling query
//! indices off an atomic counter — no external dependencies.
//!
//! ## Example
//!
//! ```
//! use std::sync::Arc;
//! use rpq_engine::{EngineConfig, Query, QueryEngine};
//! use rpq_core::predicate::Predicate;
//! use rpq_core::rq::Rq;
//! use rpq_graph::gen::essembly;
//! use rpq_regex::FRegex;
//!
//! let g = Arc::new(essembly());
//! let engine = QueryEngine::with_config(Arc::clone(&g), EngineConfig::default());
//! let rq = Rq::new(
//!     Predicate::parse("job = \"biologist\"", g.schema()).unwrap(),
//!     Predicate::parse("job = \"doctor\"", g.schema()).unwrap(),
//!     FRegex::parse("fa^2 fn", g.alphabet()).unwrap(),
//! );
//! let batch = engine.run_batch(&[Query::Rq(rq.clone()), Query::Rq(rq)]);
//! assert_eq!(batch.len(), 2);
//! assert_eq!(batch.items()[0].output.as_rq().unwrap().len(), 4);
//! ```

mod batch;
mod engine;
mod error;
mod explain;
pub mod memo;
pub mod planner;
mod service;
mod sharded;
mod snapshot;
mod updatable;

pub use batch::{BatchItem, BatchResult, Query, QueryOutput};
pub use engine::{EngineConfig, EngineConfigBuilder, QueryEngine};
pub use error::{ConfigError, EngineError};
pub use memo::{CacheKind, ReachMemo, SemanticMemo, SemanticStats};
pub use planner::Plan;
pub use service::QueryService;
pub use sharded::ShardedEngine;
pub use snapshot::{IndexState, Snapshot};
pub use updatable::{ApplyReport, IndexMaintenance, StandingId, UpdatableEngine};
// the profile types live in rpq-trace (every layer records into it);
// re-exported here because the engine's explain surface returns them
pub use rpq_trace::{QueryProfile, StageTiming};
