//! Batch inputs and outputs: [`Query`], [`QueryOutput`], [`BatchResult`].

use crate::error::EngineError;
use crate::planner::Plan;
use rpq_core::lang::LangError;
use rpq_core::pq::{Pq, PqResult};
use rpq_core::predicate::Predicate;
use rpq_core::rq::{Rq, RqResult};
use rpq_graph::Graph;
use rpq_regex::FRegex;
use std::sync::Arc;
use std::time::Duration;

/// One query in a batch — the engine serves RQs and PQs side by side.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Query {
    /// A reachability query (§2, §4).
    Rq(Rq),
    /// A graph pattern query (§2, §5).
    Pq(Pq),
}

impl Query {
    /// Parse an RQ from its three textual fields against `graph`'s
    /// vocabulary: source predicate, target predicate (empty string =
    /// trivially true) and an F-regex. This is the boundary the server's
    /// wire codec lands on — parse failures are typed
    /// [`EngineError::BadQuery`] values, never panics.
    ///
    /// ```
    /// use rpq_engine::Query;
    /// use rpq_graph::gen::essembly;
    /// let g = essembly();
    /// let q = Query::parse_rq("job = \"biologist\"", "", "fa^2 fn", &g).unwrap();
    /// assert!(matches!(q, Query::Rq(_)));
    /// assert!(Query::parse_rq("job = \"x\"", "", "no_such_color", &g).is_err());
    /// ```
    pub fn parse_rq(
        from: &str,
        to: &str,
        regex: &str,
        graph: &Graph,
    ) -> Result<Query, EngineError> {
        let from = Predicate::parse(from, graph.schema()).map_err(|e| EngineError::BadQuery {
            line: 0,
            msg: format!("source predicate: {e}"),
        })?;
        let to = Predicate::parse(to, graph.schema()).map_err(|e| EngineError::BadQuery {
            line: 0,
            msg: format!("target predicate: {e}"),
        })?;
        let regex = FRegex::parse(regex, graph.alphabet()).map_err(|e| EngineError::BadQuery {
            line: 0,
            msg: format!("regex: {e}"),
        })?;
        Ok(Query::Rq(Rq::new(from, to, regex)))
    }

    /// Parse a PQ from its [`rpq_core::lang`] text (`node …; edge a -> b:
    /// regex` statements) against `graph`'s vocabulary. Failures carry the
    /// 1-based line of the offending statement in
    /// [`EngineError::BadQuery`].
    ///
    /// ```
    /// use rpq_engine::{EngineError, Query};
    /// use rpq_graph::gen::essembly;
    /// let g = essembly();
    /// let q = Query::parse_pq("node a: job = \"doctor\"; node b; edge a -> b: fn+", &g);
    /// assert!(matches!(q, Ok(Query::Pq(_))));
    /// let err = Query::parse_pq("node a\nedge a -> ghost: fn", &g).unwrap_err();
    /// assert!(matches!(err, EngineError::BadQuery { line: 2, .. }));
    /// ```
    pub fn parse_pq(text: &str, graph: &Graph) -> Result<Query, EngineError> {
        rpq_core::lang::parse_pq(text, graph.schema(), graph.alphabet())
            .map(Query::Pq)
            .map_err(lang_error)
    }
}

/// Lift a [`LangError`] (which formats as `line {l}: {msg}`) into
/// [`EngineError::BadQuery`] with the line split out, so the server can
/// report it as a structured field without double-prefixing.
fn lang_error(e: LangError) -> EngineError {
    let line = match &e {
        LangError::BadStatement(l, _)
        | LangError::DuplicateNode(l, _)
        | LangError::UnknownNode(l, _)
        | LangError::BadPredicate(l, _)
        | LangError::BadRegex(l, _)
        | LangError::MissingArrow(l, _)
        | LangError::MissingConstraint(l, _) => *l,
    };
    let full = e.to_string();
    let msg = full
        .strip_prefix(&format!("line {line}: "))
        .unwrap_or(&full)
        .to_owned();
    EngineError::BadQuery { line, msg }
}

impl From<Rq> for Query {
    fn from(rq: Rq) -> Self {
        Query::Rq(rq)
    }
}

impl From<Pq> for Query {
    fn from(pq: Pq) -> Self {
        Query::Pq(pq)
    }
}

/// The result of one query, tagged by kind.
///
/// PQ results are behind an `Arc`: serving a standing query's maintained
/// answer is an O(1) handle clone, not a deep copy of the match sets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryOutput {
    /// Result of a [`Query::Rq`].
    Rq(RqResult),
    /// Result of a [`Query::Pq`].
    Pq(Arc<PqResult>),
}

impl QueryOutput {
    /// The RQ result, if this was an RQ.
    pub fn as_rq(&self) -> Option<&RqResult> {
        match self {
            QueryOutput::Rq(r) => Some(r),
            QueryOutput::Pq(_) => None,
        }
    }

    /// The PQ result, if this was a PQ.
    pub fn as_pq(&self) -> Option<&PqResult> {
        match self {
            QueryOutput::Pq(r) => Some(r.as_ref()),
            QueryOutput::Rq(_) => None,
        }
    }

    /// Number of matched pairs (RQ) or total match-set size (PQ) — a
    /// uniform "result volume" measure for reports.
    pub fn match_count(&self) -> usize {
        match self {
            QueryOutput::Rq(r) => r.len(),
            QueryOutput::Pq(r) => r.size(),
        }
    }
}

/// Per-query record in a [`BatchResult`].
#[derive(Debug, Clone)]
pub struct BatchItem {
    /// The query's result.
    pub output: QueryOutput,
    /// The strategy the planner chose.
    pub plan: Plan,
    /// Wall-clock evaluation time of this query on its worker.
    pub time: Duration,
    /// Execution profile, present only on the profiled/explain paths
    /// (`run_query_profiled` and `POST /v1/explain`); `None` on the hot
    /// path, which pays nothing for the field.
    pub profile: Option<Arc<rpq_trace::QueryProfile>>,
}

/// Everything a batch run produced, in input order.
#[derive(Debug, Clone)]
pub struct BatchResult {
    items: Vec<BatchItem>,
    wall: Duration,
    workers: usize,
    memo_hits: u64,
    memo_misses: u64,
}

impl BatchResult {
    pub(crate) fn new(
        items: Vec<BatchItem>,
        wall: Duration,
        workers: usize,
        memo_stats: (u64, u64),
    ) -> Self {
        BatchResult {
            items,
            wall,
            workers,
            memo_hits: memo_stats.0,
            memo_misses: memo_stats.1,
        }
    }

    /// Per-query records, in the order the queries were submitted.
    pub fn items(&self) -> &[BatchItem] {
        &self.items
    }

    /// Consume the result, yielding the per-query records (used by the
    /// snapshot layer to splice standing-query answers into a sub-batch).
    pub(crate) fn into_items(self) -> Vec<BatchItem> {
        self.items
    }

    /// Just the outputs, in submission order.
    pub fn outputs(&self) -> impl Iterator<Item = &QueryOutput> {
        self.items.iter().map(|i| &i.output)
    }

    /// Number of queries in the batch.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True for an empty batch.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Wall-clock time of the whole batch (parallel).
    pub fn wall_time(&self) -> Duration {
        self.wall
    }

    /// Sum of per-query evaluation times (the sequential-equivalent cost).
    pub fn total_query_time(&self) -> Duration {
        self.items.iter().map(|i| i.time).sum()
    }

    /// Number of worker threads the batch ran on.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// `(hits, misses)` of the batch's shared reach-set memo.
    pub fn memo_stats(&self) -> (u64, u64) {
        (self.memo_hits, self.memo_misses)
    }
}
