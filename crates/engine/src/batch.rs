//! Batch inputs and outputs: [`Query`], [`QueryOutput`], [`BatchResult`].

use crate::planner::Plan;
use rpq_core::pq::{Pq, PqResult};
use rpq_core::rq::{Rq, RqResult};
use std::sync::Arc;
use std::time::Duration;

/// One query in a batch — the engine serves RQs and PQs side by side.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Query {
    /// A reachability query (§2, §4).
    Rq(Rq),
    /// A graph pattern query (§2, §5).
    Pq(Pq),
}

impl From<Rq> for Query {
    fn from(rq: Rq) -> Self {
        Query::Rq(rq)
    }
}

impl From<Pq> for Query {
    fn from(pq: Pq) -> Self {
        Query::Pq(pq)
    }
}

/// The result of one query, tagged by kind.
///
/// PQ results are behind an `Arc`: serving a standing query's maintained
/// answer is an O(1) handle clone, not a deep copy of the match sets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryOutput {
    /// Result of a [`Query::Rq`].
    Rq(RqResult),
    /// Result of a [`Query::Pq`].
    Pq(Arc<PqResult>),
}

impl QueryOutput {
    /// The RQ result, if this was an RQ.
    pub fn as_rq(&self) -> Option<&RqResult> {
        match self {
            QueryOutput::Rq(r) => Some(r),
            QueryOutput::Pq(_) => None,
        }
    }

    /// The PQ result, if this was a PQ.
    pub fn as_pq(&self) -> Option<&PqResult> {
        match self {
            QueryOutput::Pq(r) => Some(r.as_ref()),
            QueryOutput::Rq(_) => None,
        }
    }

    /// Number of matched pairs (RQ) or total match-set size (PQ) — a
    /// uniform "result volume" measure for reports.
    pub fn match_count(&self) -> usize {
        match self {
            QueryOutput::Rq(r) => r.len(),
            QueryOutput::Pq(r) => r.size(),
        }
    }
}

/// Per-query record in a [`BatchResult`].
#[derive(Debug, Clone)]
pub struct BatchItem {
    /// The query's result.
    pub output: QueryOutput,
    /// The strategy the planner chose.
    pub plan: Plan,
    /// Wall-clock evaluation time of this query on its worker.
    pub time: Duration,
}

/// Everything a batch run produced, in input order.
#[derive(Debug, Clone)]
pub struct BatchResult {
    items: Vec<BatchItem>,
    wall: Duration,
    workers: usize,
    memo_hits: u64,
    memo_misses: u64,
}

impl BatchResult {
    pub(crate) fn new(
        items: Vec<BatchItem>,
        wall: Duration,
        workers: usize,
        memo_stats: (u64, u64),
    ) -> Self {
        BatchResult {
            items,
            wall,
            workers,
            memo_hits: memo_stats.0,
            memo_misses: memo_stats.1,
        }
    }

    /// Per-query records, in the order the queries were submitted.
    pub fn items(&self) -> &[BatchItem] {
        &self.items
    }

    /// Consume the result, yielding the per-query records (used by the
    /// snapshot layer to splice standing-query answers into a sub-batch).
    pub(crate) fn into_items(self) -> Vec<BatchItem> {
        self.items
    }

    /// Just the outputs, in submission order.
    pub fn outputs(&self) -> impl Iterator<Item = &QueryOutput> {
        self.items.iter().map(|i| &i.output)
    }

    /// Number of queries in the batch.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True for an empty batch.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Wall-clock time of the whole batch (parallel).
    pub fn wall_time(&self) -> Duration {
        self.wall
    }

    /// Sum of per-query evaluation times (the sequential-equivalent cost).
    pub fn total_query_time(&self) -> Duration {
        self.items.iter().map(|i| i.time).sum()
    }

    /// Number of worker threads the batch ran on.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// `(hits, misses)` of the batch's shared reach-set memo.
    pub fn memo_stats(&self) -> (u64, u64) {
        (self.memo_hits, self.memo_misses)
    }
}
