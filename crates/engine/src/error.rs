//! Typed errors for the public engine boundary.
//!
//! The seed library panicked its way through boundary failures: bad query
//! text bubbled up as `unwrap`s on the parse results, an update naming a
//! node the graph does not have hit the graph builder's `assert!`, and an
//! over-budget index build surfaced as the index crate's own error type.
//! None of that matters in-process — but a serving front-end
//! (`rpq-server`) cannot let one malformed request kill a connection
//! thread. [`EngineError`] is the one enum every boundary failure maps
//! into, and the server maps its variants onto HTTP status codes instead
//! of unwinding.

use rpq_index::HopBuildError;
use std::fmt;

/// Why a request failed at the engine boundary.
///
/// The enum is `#[non_exhaustive]`: new failure modes can be added
/// without breaking matches downstream (callers keep a `_` arm).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum EngineError {
    /// Query text failed to parse (predicate, regex, or pattern syntax).
    /// `line` is 1-based within the offending query text (`0` when the
    /// failure is not line-addressable, e.g. a single-line RQ field).
    BadQuery {
        /// 1-based line within the query text, `0` if not applicable.
        line: usize,
        /// Human-readable parse failure.
        msg: String,
    },
    /// An update referenced a node id the graph does not have.
    NodeOutOfRange {
        /// The offending node id.
        node: u32,
        /// The graph's node count at the time of the call.
        node_count: usize,
    },
    /// An update tried to insert/delete a wildcard-colored edge — data
    /// edges carry concrete colors only.
    WildcardEdge,
    /// An index build exceeded its configured byte budget.
    IndexOverBudget {
        /// The configured budget.
        budget: usize,
        /// Estimated bytes at the moment the build gave up.
        reached: usize,
    },
    /// An index build was cancelled (its graph version was superseded).
    BuildCancelled,
    /// An incremental index repair invalidated more of the index than its
    /// cost model allows — the caller should rebuild from scratch.
    RepairTooBroad {
        /// Landmarks the update batch invalidated.
        invalidated: usize,
        /// The invalidation cap the repair was given.
        limit: usize,
    },
    /// A configuration value failed validation.
    Config(ConfigError),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::BadQuery { line: 0, msg } => write!(f, "bad query: {msg}"),
            EngineError::BadQuery { line, msg } => write!(f, "bad query: line {line}: {msg}"),
            EngineError::NodeOutOfRange { node, node_count } => {
                write!(f, "node {node} out of range (graph has {node_count} nodes)")
            }
            EngineError::WildcardEdge => {
                write!(
                    f,
                    "updates must name a concrete edge color, not the wildcard"
                )
            }
            EngineError::IndexOverBudget { budget, reached } => {
                write!(f, "index budget exceeded: {reached} > {budget} bytes")
            }
            EngineError::BuildCancelled => write!(f, "index build cancelled"),
            EngineError::RepairTooBroad { invalidated, limit } => {
                write!(
                    f,
                    "index repair too broad: {invalidated} landmarks invalidated > limit {limit}"
                )
            }
            EngineError::Config(e) => write!(f, "bad configuration: {e}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<HopBuildError> for EngineError {
    fn from(e: HopBuildError) -> Self {
        match e {
            HopBuildError::OverBudget { budget, reached } => {
                EngineError::IndexOverBudget { budget, reached }
            }
            HopBuildError::Cancelled => EngineError::BuildCancelled,
            HopBuildError::RepairTooBroad { invalidated, limit } => {
                EngineError::RepairTooBroad { invalidated, limit }
            }
        }
    }
}

impl From<ConfigError> for EngineError {
    fn from(e: ConfigError) -> Self {
        EngineError::Config(e)
    }
}

/// Why an [`EngineConfig`](crate::EngineConfig) failed to validate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConfigError {
    /// `reach_cache_capacity` was zero — the cached PQ backend and the
    /// standing-query matchers need at least one LRU slot.
    ZeroReachCache,
    /// `shards` was zero — `1` means "sharding disabled"; zero shards can
    /// partition nothing.
    ZeroShards,
    /// `split_crossover` was zero — every cyclic pattern would plan
    /// `SplitMatch`, including the tiny ones the measurement showed it
    /// losing on. Use `usize::MAX` to disable split instead.
    ZeroSplitCrossover,
    /// `workers` exceeded the sanity cap (the engine spawns this many
    /// scoped threads per batch).
    TooManyWorkers {
        /// The requested worker count.
        workers: usize,
        /// The cap ([`crate::EngineConfigBuilder::MAX_WORKERS`]).
        max: usize,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroReachCache => {
                write!(f, "reach_cache_capacity must be at least 1")
            }
            ConfigError::ZeroShards => {
                write!(f, "shards must be at least 1 (1 = sharding disabled)")
            }
            ConfigError::ZeroSplitCrossover => write!(
                f,
                "split_crossover must be at least 1 (usize::MAX disables split)"
            ),
            ConfigError::TooManyWorkers { workers, max } => {
                write!(f, "workers = {workers} exceeds the cap of {max}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}
