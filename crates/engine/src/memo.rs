//! Concurrent batch-scoped memo table for product-automaton reach sets.
//!
//! RQ evaluation by forward product search does one
//! [`product_reach_set`] per candidate
//! source — work that depends only on the query's *source predicate* and
//! *regex*, not on its target predicate. Batches of real traffic repeat
//! those keys constantly (many queries differ only in the target side), so
//! the engine shares one table per batch: the first worker to need a key
//! computes the full `(source, reachable)` pair set, every later worker —
//! on any thread — gets the `Arc` for free.
//!
//! Concurrency scheme: a mutex-guarded map from key to a per-key
//! `OnceLock` cell. The map lock is held only to clone the cell's `Arc`;
//! the (expensive) reach-set computation runs outside it, so workers
//! computing *different* keys never serialize, while workers racing on the
//! *same* key block in `OnceLock::get_or_init` and share the one result.

use rpq_core::predicate::Predicate;
use rpq_core::reach::product_reach_set;
use rpq_core::rq::matches_of;
use rpq_graph::{Graph, NodeId};
use rpq_regex::{FRegex, Nfa};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

type PairSet = Arc<Vec<(NodeId, NodeId)>>;
type Cell = Arc<OnceLock<PairSet>>;
type Cells = HashMap<Predicate, HashMap<FRegex, Cell>>;

/// Shared `(source predicate, regex) → reach pairs` table.
///
/// The key is split across two map levels (`predicate → regex → cell`) so
/// that lookups hash the caller's *borrowed* predicate and regex directly:
/// the hit path does no cloning or allocation; only the first claim of a
/// key clones it for ownership.
#[derive(Debug, Default)]
pub struct ReachMemo {
    cells: Mutex<Cells>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ReachMemo {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// All `(x, y)` with `x ⊨ from` and a nonempty path `x ⇝ y` spelling a
    /// word of `L(regex)` — computed at most once per key per table, sorted
    /// by `(x, y)`.
    pub fn reach_pairs(&self, g: &Graph, from: &Predicate, regex: &FRegex) -> PairSet {
        let cell = {
            let mut map = self.cells.lock().expect("memo poisoned");
            match map.get(from).and_then(|inner| inner.get(regex)) {
                Some(c) => {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    Arc::clone(c)
                }
                None => {
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    let c = Arc::new(OnceLock::new());
                    map.entry(from.clone())
                        .or_default()
                        .insert(regex.clone(), Arc::clone(&c));
                    c
                }
            }
        };
        Arc::clone(cell.get_or_init(|| {
            let nfa = Nfa::from_regex(regex);
            let mut pairs = Vec::new();
            for x in matches_of(g, from) {
                for y in product_reach_set(g, &nfa, x) {
                    pairs.push((x, y));
                }
            }
            pairs.sort_unstable();
            Arc::new(pairs)
        }))
    }

    /// `(hits, misses)` — a *hit* is a lookup that found the key already
    /// claimed (even if still being computed by another worker).
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Number of distinct keys claimed so far.
    pub fn len(&self) -> usize {
        self.cells
            .lock()
            .expect("memo poisoned")
            .values()
            .map(|inner| inner.len())
            .sum()
    }

    /// True if no key has been claimed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpq_graph::gen::essembly;

    #[test]
    fn memo_computes_once_and_shares() {
        let g = essembly();
        let memo = ReachMemo::new();
        let from = Predicate::parse("job = \"biologist\"", g.schema()).unwrap();
        let re = FRegex::parse("fa^2 fn", g.alphabet()).unwrap();
        let a = memo.reach_pairs(&g, &from, &re);
        let b = memo.reach_pairs(&g, &from, &re);
        assert!(Arc::ptr_eq(&a, &b), "same key must share one Arc");
        assert_eq!(memo.stats(), (1, 1));
        assert_eq!(memo.len(), 1);

        let other = Predicate::parse("job = \"doctor\"", g.schema()).unwrap();
        let c = memo.reach_pairs(&g, &other, &re);
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(memo.len(), 2);

        // same predicate, different regex: a distinct key in the second
        // map level
        let re2 = FRegex::parse("fn", g.alphabet()).unwrap();
        let d = memo.reach_pairs(&g, &from, &re2);
        assert!(!Arc::ptr_eq(&a, &d));
        assert_eq!(memo.len(), 3);
        assert!(!memo.is_empty());
    }

    #[test]
    fn memo_matches_direct_eval() {
        let g = essembly();
        let memo = ReachMemo::new();
        let from = Predicate::parse("job = \"biologist\" && sp = \"cloning\"", g.schema()).unwrap();
        let re = FRegex::parse("fa^2 fn", g.alphabet()).unwrap();
        let pairs = memo.reach_pairs(&g, &from, &re);
        let nfa = Nfa::from_regex(&re);
        let mut expect = Vec::new();
        for x in matches_of(&g, &from) {
            for y in product_reach_set(&g, &nfa, x) {
                expect.push((x, y));
            }
        }
        expect.sort_unstable();
        assert_eq!(*pairs.as_ref(), expect);
    }

    #[test]
    fn concurrent_same_key_computes_once() {
        let g = essembly();
        let memo = ReachMemo::new();
        let from = Predicate::always_true();
        let re = FRegex::parse("fa+", g.alphabet()).unwrap();
        let sets: Vec<_> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| s.spawn(|| memo.reach_pairs(&g, &from, &re)))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for w in &sets[1..] {
            assert!(Arc::ptr_eq(&sets[0], w));
        }
        let (hits, misses) = memo.stats();
        assert_eq!(hits + misses, 8);
        assert_eq!(memo.len(), 1);
    }
}
