//! Concurrent semantic memo for product-automaton reach sets: exact
//! sharing plus containment-driven reuse.
//!
//! RQ evaluation by forward product search does one
//! [`product_reach_set`] per candidate
//! source — work that depends only on the query's *source predicate* and
//! *regex*, not on its target predicate. Batches of real traffic repeat
//! those keys constantly, and — at many-users scale — repeat them in
//! *syntactic variants* and in *subsumed* forms (ROADMAP item 2). The
//! [`SemanticMemo`] turns all three kinds of redundancy into cache hits:
//!
//! 1. **Canonical keys.** Every regex is keyed by its run-normal form
//!    ([`rpq_regex::canon::canonicalize`]), so `a^2 a` and `a a^2` share
//!    one cell, one computation, one `Arc`.
//! 2. **Exact sharing** (the original `ReachMemo` contract): the first
//!    worker to need a key computes the full `(source, reachable)` pair
//!    set; every later worker gets the `Arc` for free.
//! 3. **Containment answering.** On an exact miss the memo consults a
//!    candidate index — completed cells bucketed by regex *skeleton*
//!    (run-color sequence) — for a cached entry whose predicate/regex
//!    *contains* the probe (`Predicate::implies` +
//!    [`rpq_regex::canon::contains_fast`]). A hit is answered by
//!    filtering the cached pair set instead of re-traversing the graph:
//!    an equal-language donor needs only a source-predicate filter; a
//!    strictly-containing donor additionally re-verifies each surviving
//!    source with the probe's (tighter) automaton — still skipping the
//!    full `matches_of` scan and every source the donor already proved
//!    unreachable. The derived set is inserted as a first-class cell, so
//!    repeats of the narrow query exact-hit from then on.
//!
//! Completed cells are bounded by an LRU byte budget; eviction removes a
//! cell from the table and the candidate index while outstanding `Arc`s
//! keep served answers alive. Invalidation is by construction: the
//! updatable engine publishes a fresh memo with every snapshot version
//! (the PR 7 repair path), so no stale pair set survives a write.
//!
//! Concurrency scheme: a mutex-guarded map from key to a per-key
//! `OnceLock` cell. The map lock is held only to clone the cell's `Arc`
//! (and, on a miss, to consult the candidate index); the expensive
//! reach-set computation or donor filtering runs outside it, so workers
//! computing *different* keys never serialize, while workers racing on
//! the *same* key block in `OnceLock::get_or_init` and share the one
//! result.

use rpq_core::predicate::Predicate;
use rpq_core::reach::product_reach_set;
use rpq_core::rq::matches_of;
use rpq_graph::{Color, Graph, NodeId};
use rpq_regex::canon::{canonicalize, contains_fast, skeleton, wildcard_skeleton};
use rpq_regex::{FRegex, Nfa};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

type PairSet = Arc<Vec<(NodeId, NodeId)>>;
type Cell = Arc<OnceLock<PairSet>>;

/// Default byte budget for completed cells (pairs only, 16 bytes each).
const DEFAULT_BYTE_BUDGET: usize = 32 << 20;

/// How a semantic-memo lookup was answered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheKind {
    /// The canonical key was already cached.
    Exact,
    /// Answered by filtering a containing entry's pair set.
    Subsumption,
}

impl CacheKind {
    /// Label for metrics/profiles (`"exact"` / `"subsumption"`).
    pub fn as_str(self) -> &'static str {
        match self {
            CacheKind::Exact => "exact",
            CacheKind::Subsumption => "subsumption",
        }
    }
}

/// Counters of the semantic layer, split by hit kind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SemanticStats {
    /// Lookups answered by the exact canonical key.
    pub exact_hits: u64,
    /// Lookups answered by filtering a containing cached entry.
    pub subsumption_hits: u64,
    /// Lookups no cached entry could answer.
    pub misses: u64,
    /// Time spent filtering/re-verifying cached pair sets for
    /// subsumption answers.
    pub filter_time: Duration,
}

impl SemanticStats {
    /// All hits, of either kind.
    pub fn hits(&self) -> u64 {
        self.exact_hits + self.subsumption_hits
    }
}

/// Bookkeeping for a completed (computed) cell.
struct Completed {
    bytes: usize,
    tick: u64,
}

#[derive(Default)]
struct Table {
    map: HashMap<Predicate, HashMap<FRegex, Cell>>,
    /// Candidate index over *completed* cells: regex skeleton → keys.
    index: HashMap<Vec<Color>, Vec<(Predicate, FRegex)>>,
    /// LRU state per completed cell.
    completed: HashMap<(Predicate, FRegex), Completed>,
    tick: u64,
    bytes: usize,
}

impl Table {
    fn touch(&mut self, from: &Predicate, regex: &FRegex) {
        self.tick += 1;
        let tick = self.tick;
        if let Some(c) = self.completed.get_mut(&(from.clone(), regex.clone())) {
            c.tick = tick;
        }
    }

    /// Find a completed cached entry containing `(from, regex)`:
    /// same-skeleton bucket first, then the all-wildcard bucket. Prefers
    /// an equal-language (regex-identical, predicate-narrowing) donor —
    /// served by a pure filter — over a strictly-containing one.
    fn find_donor(&self, from: &Predicate, regex: &FRegex) -> Option<(PairSet, bool)> {
        let probe_skel = skeleton(regex);
        let wild = wildcard_skeleton();
        let buckets = if probe_skel == wild {
            vec![&probe_skel]
        } else {
            vec![&probe_skel, &wild]
        };
        let mut fallback: Option<PairSet> = None;
        for skel in buckets {
            for (dpred, dregex) in self.index.get(skel).into_iter().flatten() {
                if !from.implies(dpred) {
                    continue;
                }
                let equal = dregex == regex;
                if !equal && !contains_fast(regex, dregex) {
                    continue;
                }
                let pairs = self
                    .map
                    .get(dpred)
                    .and_then(|inner| inner.get(dregex))
                    .and_then(|cell| cell.get())
                    .cloned();
                let Some(pairs) = pairs else { continue };
                if equal {
                    return Some((pairs, true));
                }
                fallback.get_or_insert(pairs);
            }
        }
        fallback.map(|p| (p, false))
    }
}

/// What a lookup resolved to, decided under the table lock.
enum Resolved {
    /// Cell existed (computed or in flight elsewhere).
    Claimed(Cell),
    /// Fresh cell to fill by filtering a donor's pair set.
    Derive(Cell, PairSet, bool),
    /// Fresh cell to fill by full evaluation.
    Compute(Cell),
}

/// Shared `(source predicate, canonical regex) → reach pairs` table with
/// containment-driven reuse. See the module docs for the full contract.
///
/// The key is split across two map levels (`predicate → regex → cell`) so
/// that lookups hash the caller's *borrowed* predicate directly; regexes
/// are canonicalized on entry so every syntactic variant of a language
/// lands on one cell.
#[derive(Default)]
pub struct SemanticMemo {
    cells: Mutex<Table>,
    exact_hits: AtomicU64,
    subsumption_hits: AtomicU64,
    misses: AtomicU64,
    probe_misses: AtomicU64,
    filter_nanos: AtomicU64,
    byte_budget: usize,
    populate_on_miss: bool,
}

/// The historical name: the exact-sharing contract of the original batch
/// memo is a strict subset of [`SemanticMemo`]'s, so every existing call
/// site keeps working unchanged.
pub type ReachMemo = SemanticMemo;

impl std::fmt::Debug for SemanticMemo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.semantic_stats();
        f.debug_struct("SemanticMemo")
            .field("len", &self.len())
            .field("stats", &s)
            .finish()
    }
}

impl SemanticMemo {
    /// Empty table with the default byte budget.
    pub fn new() -> Self {
        Self::with_byte_budget(DEFAULT_BYTE_BUDGET)
    }

    /// Empty table bounding completed pair sets to roughly
    /// `byte_budget` bytes (16 bytes per cached pair); least-recently
    /// used cells are evicted past the budget. A budget of 0 keeps at
    /// most one completed cell.
    pub fn with_byte_budget(byte_budget: usize) -> Self {
        SemanticMemo {
            byte_budget,
            ..SemanticMemo::default()
        }
    }

    /// An engine-lifetime memo: index-backed RQ plans *populate* it on a
    /// miss — computing the key's full unfiltered reach set through
    /// their index and installing it via [`SemanticMemo::insert`] —
    /// instead of only probing it. The wider cold evaluation (no
    /// target-side pruning) pays off only when the memo outlives a
    /// single call, so the sharded engine and published snapshots use
    /// this constructor while the throwaway per-call memos of
    /// `run_query` keep [`SemanticMemo::new`].
    pub fn persistent() -> Self {
        SemanticMemo {
            populate_on_miss: true,
            ..Self::new()
        }
    }

    /// True when index-backed plans should install the reach sets they
    /// compute (see [`SemanticMemo::persistent`]).
    pub fn populates_on_miss(&self) -> bool {
        self.populate_on_miss
    }

    /// All `(x, y)` with `x ⊨ from` and a nonempty path `x ⇝ y` spelling a
    /// word of `L(regex)` — computed at most once per canonical key per
    /// table, sorted by `(x, y)`. Served from a containing cached entry
    /// when one exists (see module docs).
    pub fn reach_pairs(&self, g: &Graph, from: &Predicate, regex: &FRegex) -> PairSet {
        let canon = canonicalize(regex);
        let resolved = {
            let mut table = self.cells.lock().expect("memo poisoned");
            match table.map.get(from).and_then(|inner| inner.get(&canon)) {
                Some(c) => {
                    self.exact_hits.fetch_add(1, Ordering::Relaxed);
                    let c = Arc::clone(c);
                    table.touch(from, &canon);
                    Resolved::Claimed(c)
                }
                None => {
                    let donor = table.find_donor(from, &canon);
                    let c: Cell = Arc::new(OnceLock::new());
                    table
                        .map
                        .entry(from.clone())
                        .or_default()
                        .insert(canon.clone(), Arc::clone(&c));
                    match donor {
                        Some((pairs, equal)) => {
                            self.subsumption_hits.fetch_add(1, Ordering::Relaxed);
                            Resolved::Derive(c, pairs, equal)
                        }
                        None => {
                            self.misses.fetch_add(1, Ordering::Relaxed);
                            Resolved::Compute(c)
                        }
                    }
                }
            }
        };
        match resolved {
            Resolved::Claimed(cell) => Arc::clone(cell.get_or_init(|| {
                // raced claim: the key was handed out before its value
                // existed; compute here like the original claimant would
                Arc::new(full_eval(g, from, &canon))
            })),
            Resolved::Derive(cell, donor, equal) => {
                self.fill(g, from, &canon, cell, Some((donor, equal)))
            }
            Resolved::Compute(cell) => self.fill(g, from, &canon, cell, None),
        }
    }

    /// Lookup-only probe for index-backed plans (matrix/hop/sharded): a
    /// completed exact cell or a containing donor answers — and a
    /// derived answer is installed as a new cell — but a full miss
    /// returns `None` without claiming anything, leaving the backend to
    /// evaluate with its own index.
    pub fn try_answer(
        &self,
        g: &Graph,
        from: &Predicate,
        regex: &FRegex,
    ) -> Option<(PairSet, CacheKind)> {
        let canon = canonicalize(regex);
        let resolved = {
            let mut table = self.cells.lock().expect("memo poisoned");
            match table.map.get(from).and_then(|inner| inner.get(&canon)) {
                Some(c) => match c.get() {
                    Some(pairs) => {
                        self.exact_hits.fetch_add(1, Ordering::Relaxed);
                        let pairs = Arc::clone(pairs);
                        table.touch(from, &canon);
                        return Some((pairs, CacheKind::Exact));
                    }
                    // in flight on another worker: don't wait on it, the
                    // index answers faster than an unfinished traversal
                    None => return None,
                },
                None => match table.find_donor(from, &canon) {
                    Some((pairs, equal)) => {
                        self.subsumption_hits.fetch_add(1, Ordering::Relaxed);
                        let c: Cell = Arc::new(OnceLock::new());
                        table
                            .map
                            .entry(from.clone())
                            .or_default()
                            .insert(canon.clone(), Arc::clone(&c));
                        Resolved::Derive(c, pairs, equal)
                    }
                    None => {
                        self.probe_misses.fetch_add(1, Ordering::Relaxed);
                        return None;
                    }
                },
            }
        };
        let Resolved::Derive(cell, donor, equal) = resolved else {
            unreachable!("try_answer only escapes the lock to derive");
        };
        let pairs = self.fill(g, from, &canon, cell, Some((donor, equal)));
        Some((pairs, CacheKind::Subsumption))
    }

    /// Install an externally computed reach set for `(from, regex)`.
    ///
    /// Index-backed plans call this after a declined
    /// [`try_answer`](SemanticMemo::try_answer) against a
    /// [`persistent`](SemanticMemo::persistent) memo, so the reach sets
    /// they compute through their index become donors for later exact
    /// and containment lookups. `pairs` must be the key's *complete*
    /// reach set — every `(x, y)` with `x ⊨ from`, unfiltered by any
    /// target predicate (sorting is established here). Counters are
    /// untouched: the probe that preceded the computation already
    /// recorded the miss. Returns the cached set — the caller's, or the
    /// racing winner's if another worker installed the key first.
    pub fn insert(
        &self,
        from: &Predicate,
        regex: &FRegex,
        mut pairs: Vec<(NodeId, NodeId)>,
    ) -> PairSet {
        let canon = canonicalize(regex);
        pairs.sort_unstable();
        let cell = {
            let mut table = self.cells.lock().expect("memo poisoned");
            Arc::clone(
                table
                    .map
                    .entry(from.clone())
                    .or_default()
                    .entry(canon.clone())
                    .or_insert_with(|| Arc::new(OnceLock::new())),
            )
        };
        let mut computed = false;
        let out = Arc::clone(cell.get_or_init(|| {
            computed = true;
            Arc::new(pairs)
        }));
        if computed {
            self.register_completed(from, &canon, out.len());
        }
        out
    }

    /// Fill `cell` (computing or deriving), then register the completed
    /// result with the candidate index and the LRU budget.
    fn fill(
        &self,
        g: &Graph,
        from: &Predicate,
        canon: &FRegex,
        cell: Cell,
        donor: Option<(PairSet, bool)>,
    ) -> PairSet {
        let mut computed = false;
        let pairs = Arc::clone(cell.get_or_init(|| {
            computed = true;
            match donor {
                Some((donor_pairs, equal)) => {
                    let started = Instant::now();
                    let derived = derive_from_donor(g, from, canon, &donor_pairs, equal);
                    self.filter_nanos
                        .fetch_add(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
                    Arc::new(derived)
                }
                None => Arc::new(full_eval(g, from, canon)),
            }
        }));
        if computed {
            self.register_completed(from, canon, pairs.len());
        }
        pairs
    }

    /// Make a freshly computed cell visible to containment lookups and
    /// charge it to the byte budget, evicting LRU cells past it.
    fn register_completed(&self, from: &Predicate, canon: &FRegex, len: usize) {
        let bytes = len * std::mem::size_of::<(NodeId, NodeId)>();
        let mut table = self.cells.lock().expect("memo poisoned");
        table.tick += 1;
        let tick = table.tick;
        let key = (from.clone(), canon.clone());
        if table.completed.contains_key(&key) {
            return; // eviction + recompute race: already registered
        }
        table
            .index
            .entry(skeleton(canon))
            .or_default()
            .push(key.clone());
        table
            .completed
            .insert(key.clone(), Completed { bytes, tick });
        table.bytes += bytes;
        while table.bytes > self.byte_budget && table.completed.len() > 1 {
            let Some(victim) = table
                .completed
                .iter()
                .filter(|(k, _)| **k != key)
                .min_by_key(|(_, c)| c.tick)
                .map(|(k, _)| k.clone())
            else {
                break;
            };
            let freed = table.completed.remove(&victim).map_or(0, |c| c.bytes);
            table.bytes -= freed;
            if let Some(bucket) = table.index.get_mut(&skeleton(&victim.1)) {
                bucket.retain(|k| *k != victim);
            }
            if let Some(inner) = table.map.get_mut(&victim.0) {
                inner.remove(&victim.1);
                if inner.is_empty() {
                    table.map.remove(&victim.0);
                }
            }
        }
    }

    /// `(hits, misses)` — a *hit* is a lookup answered from cached state
    /// (exact key already claimed, even if still being computed by
    /// another worker, or a containment donor); a *miss* claimed a fresh
    /// key for full evaluation.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.exact_hits.load(Ordering::Relaxed) + self.subsumption_hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Per-kind counters of the semantic layer, including lookup-only
    /// probes declined by [`SemanticMemo::try_answer`].
    pub fn semantic_stats(&self) -> SemanticStats {
        SemanticStats {
            exact_hits: self.exact_hits.load(Ordering::Relaxed),
            subsumption_hits: self.subsumption_hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed) + self.probe_misses.load(Ordering::Relaxed),
            filter_time: Duration::from_nanos(self.filter_nanos.load(Ordering::Relaxed)),
        }
    }

    /// Number of distinct keys claimed so far.
    pub fn len(&self) -> usize {
        self.cells
            .lock()
            .expect("memo poisoned")
            .map
            .values()
            .map(|inner| inner.len())
            .sum()
    }

    /// True if no key has been claimed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes currently charged against the completed-cell budget.
    pub fn cached_bytes(&self) -> usize {
        self.cells.lock().expect("memo poisoned").bytes
    }
}

/// The uncached evaluation: full source scan + one product search per
/// source.
fn full_eval(g: &Graph, from: &Predicate, regex: &FRegex) -> Vec<(NodeId, NodeId)> {
    let nfa = Nfa::from_regex(regex);
    let mut pairs = Vec::new();
    for x in matches_of(g, from) {
        for y in product_reach_set(g, &nfa, x) {
            pairs.push((x, y));
        }
    }
    pairs.sort_unstable();
    pairs
}

/// Answer `(from, regex)` from a containing donor's pair set. With an
/// equal-language donor the answer is the donor filtered to sources
/// satisfying the (narrower) probe predicate. With a strictly-containing
/// regex, each surviving donor source is re-verified with the probe's
/// automaton — sources the donor proved unreachable are skipped, as is
/// the full `matches_of` scan.
fn derive_from_donor(
    g: &Graph,
    from: &Predicate,
    regex: &FRegex,
    donor: &[(NodeId, NodeId)],
    equal_language: bool,
) -> Vec<(NodeId, NodeId)> {
    if equal_language {
        return donor
            .iter()
            .filter(|&&(x, _)| from.matches(g.attrs(x)))
            .copied()
            .collect();
    }
    let nfa = Nfa::from_regex(regex);
    let mut pairs = Vec::new();
    let mut last: Option<NodeId> = None;
    for &(x, _) in donor {
        if last == Some(x) {
            continue; // donor is sorted: distinct sources come in blocks
        }
        last = Some(x);
        if !from.matches(g.attrs(x)) {
            continue;
        }
        for y in product_reach_set(g, &nfa, x) {
            pairs.push((x, y));
        }
    }
    pairs.sort_unstable();
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpq_graph::gen::essembly;

    #[test]
    fn memo_computes_once_and_shares() {
        let g = essembly();
        let memo = ReachMemo::new();
        let from = Predicate::parse("job = \"biologist\"", g.schema()).unwrap();
        let re = FRegex::parse("fa^2 fn", g.alphabet()).unwrap();
        let a = memo.reach_pairs(&g, &from, &re);
        let b = memo.reach_pairs(&g, &from, &re);
        assert!(Arc::ptr_eq(&a, &b), "same key must share one Arc");
        assert_eq!(memo.stats(), (1, 1));
        assert_eq!(memo.len(), 1);

        let other = Predicate::parse("job = \"doctor\"", g.schema()).unwrap();
        let c = memo.reach_pairs(&g, &other, &re);
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(memo.len(), 2);

        // same predicate, different regex: a distinct key in the second
        // map level
        let re2 = FRegex::parse("fn", g.alphabet()).unwrap();
        let d = memo.reach_pairs(&g, &from, &re2);
        assert!(!Arc::ptr_eq(&a, &d));
        assert_eq!(memo.len(), 3);
        assert!(!memo.is_empty());
    }

    #[test]
    fn memo_matches_direct_eval() {
        let g = essembly();
        let memo = ReachMemo::new();
        let from = Predicate::parse("job = \"biologist\" && sp = \"cloning\"", g.schema()).unwrap();
        let re = FRegex::parse("fa^2 fn", g.alphabet()).unwrap();
        let pairs = memo.reach_pairs(&g, &from, &re);
        let nfa = Nfa::from_regex(&re);
        let mut expect = Vec::new();
        for x in matches_of(&g, &from) {
            for y in product_reach_set(&g, &nfa, x) {
                expect.push((x, y));
            }
        }
        expect.sort_unstable();
        assert_eq!(*pairs.as_ref(), expect);
    }

    #[test]
    fn concurrent_same_key_computes_once() {
        let g = essembly();
        let memo = ReachMemo::new();
        let from = Predicate::always_true();
        let re = FRegex::parse("fa+", g.alphabet()).unwrap();
        let sets: Vec<_> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| s.spawn(|| memo.reach_pairs(&g, &from, &re)))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for w in &sets[1..] {
            assert!(Arc::ptr_eq(&sets[0], w));
        }
        let (hits, misses) = memo.stats();
        assert_eq!(hits + misses, 8);
        assert_eq!(memo.len(), 1);
    }

    #[test]
    fn syntactic_variants_share_one_cell() {
        let g = essembly();
        let memo = SemanticMemo::new();
        let from = Predicate::parse("job = \"biologist\"", g.schema()).unwrap();
        let a = memo.reach_pairs(&g, &from, &FRegex::parse("fa^2 fa", g.alphabet()).unwrap());
        let b = memo.reach_pairs(&g, &from, &FRegex::parse("fa fa^2", g.alphabet()).unwrap());
        assert!(Arc::ptr_eq(&a, &b), "canonical keys unify variants");
        assert_eq!(memo.len(), 1);
        let s = memo.semantic_stats();
        assert_eq!((s.exact_hits, s.subsumption_hits, s.misses), (1, 0, 1));
    }

    #[test]
    fn narrower_predicate_is_served_by_subsumption() {
        let g = essembly();
        let memo = SemanticMemo::new();
        let re = FRegex::parse("fa^2 fn", g.alphabet()).unwrap();
        let broad = Predicate::parse("job = \"biologist\"", g.schema()).unwrap();
        let narrow =
            Predicate::parse("job = \"biologist\" && sp = \"cloning\"", g.schema()).unwrap();
        let _ = memo.reach_pairs(&g, &broad, &re);
        let served = memo.reach_pairs(&g, &narrow, &re);
        let s = memo.semantic_stats();
        assert_eq!(s.subsumption_hits, 1, "filtered from the broad entry");
        assert_eq!(s.misses, 1);
        assert!(s.filter_time > Duration::ZERO);
        // bit-identical to direct evaluation
        let direct = SemanticMemo::new().reach_pairs(&g, &narrow, &re);
        assert_eq!(*served, *direct);
        // and now cached exactly
        let again = memo.reach_pairs(&g, &narrow, &re);
        assert!(Arc::ptr_eq(&served, &again));
    }

    #[test]
    fn narrower_regex_is_reverified_not_trusted() {
        let g = essembly();
        let memo = SemanticMemo::new();
        let from = Predicate::parse("job = \"biologist\"", g.schema()).unwrap();
        let broad = FRegex::parse("fa^3 fn", g.alphabet()).unwrap();
        let narrow = FRegex::parse("fa^2 fn", g.alphabet()).unwrap();
        let _ = memo.reach_pairs(&g, &from, &broad);
        let served = memo.reach_pairs(&g, &from, &narrow);
        assert_eq!(memo.semantic_stats().subsumption_hits, 1);
        let direct = SemanticMemo::new().reach_pairs(&g, &from, &narrow);
        assert_eq!(*served, *direct, "tighter regex re-verified per source");
    }

    #[test]
    fn try_answer_serves_only_cached_state() {
        let g = essembly();
        let memo = SemanticMemo::new();
        let from = Predicate::parse("job = \"biologist\"", g.schema()).unwrap();
        let re = FRegex::parse("fa^2 fn", g.alphabet()).unwrap();
        assert!(memo.try_answer(&g, &from, &re).is_none(), "cold cache");
        assert_eq!(memo.semantic_stats().misses, 1);
        let computed = memo.reach_pairs(&g, &from, &re);
        let (pairs, kind) = memo.try_answer(&g, &from, &re).expect("now cached");
        assert_eq!(kind, CacheKind::Exact);
        assert!(Arc::ptr_eq(&computed, &pairs));
        // a narrower probe is derived and installed
        let narrow =
            Predicate::parse("job = \"biologist\" && sp = \"cloning\"", g.schema()).unwrap();
        let (subsumed, kind) = memo.try_answer(&g, &narrow, &re).expect("donor answers");
        assert_eq!(kind, CacheKind::Subsumption);
        let direct = SemanticMemo::new().reach_pairs(&g, &narrow, &re);
        assert_eq!(*subsumed, *direct);
        let (_, kind) = memo.try_answer(&g, &narrow, &re).expect("installed");
        assert_eq!(kind, CacheKind::Exact);
    }

    #[test]
    fn byte_budget_evicts_lru_completed_cells() {
        let g = essembly();
        // budget of one pair: every new completed cell evicts the last
        let memo = SemanticMemo::with_byte_budget(std::mem::size_of::<(NodeId, NodeId)>());
        let from = Predicate::always_true();
        let res = ["fa", "fn", "sa"];
        for r in res {
            let _ = memo.reach_pairs(&g, &from, &FRegex::parse(r, g.alphabet()).unwrap());
        }
        assert!(memo.len() < res.len(), "older cells evicted");
        assert!(memo.cached_bytes() > 0);
        // evicted keys recompute as fresh misses, not hits
        let before = memo.semantic_stats().misses;
        let _ = memo.reach_pairs(&g, &from, &FRegex::parse("fa", g.alphabet()).unwrap());
        assert_eq!(memo.semantic_stats().misses, before + 1);
    }
}
