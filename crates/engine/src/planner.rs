//! Per-query strategy selection.
//!
//! The seed library makes callers hard-pick an RQ strategy
//! (`eval_with_matrix` / `eval_bibfs` / `eval_bfs`); the engine chooses one
//! per query from three signals:
//!
//! * **index availability** — matrix probes are strictly cheapest when the
//!   per-color [`DistanceMatrix`](rpq_graph::DistanceMatrix) exists; the
//!   engine builds it lazily only for graphs under the configured node
//!   limit (its footprint is O(|Σ|·|V|²)). Above the limit, pruned 2-hop
//!   labels (`rpq_index::HopLabels`) take its place once their background
//!   build lands — label probes beat any per-query search, and the index
//!   costs memory proportional to label size, not |V|²;
//! * **batch shape** — when several queries in a batch share a
//!   `(source predicate, regex)` key, the memoized forward product search
//!   computes their reach set once, so sharing beats a per-query biBFS;
//! * **regex shape** — multi-atom expressions split well in the middle
//!   (biBFS meets after half the atoms); single-atom expressions gain
//!   nothing from bidirectionality, so they run the plain product BFS.

use rpq_regex::FRegex;

/// The evaluation strategy chosen for one query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Plan {
    /// RQ via distance-matrix probes (`Rq::eval_with_matrix`, §4 "DM").
    RqDm,
    /// RQ via pruned 2-hop label probes (`Rq::eval_with_dist` over
    /// `rpq_index::HopLabels`) — the DM algorithm beyond the matrix node
    /// limit.
    RqHop,
    /// RQ via bi-directional search (`Rq::eval_bibfs`, §4 "biBFS").
    RqBiBfs,
    /// RQ via the forward product search, memoized per
    /// `(source predicate, regex)` across the batch (`§4 "BFS"`).
    RqBfsMemo,
    /// PQ via `JoinMatch` over the matrix backend (normalized, §5.1).
    PqJoinMatrix,
    /// PQ via `JoinMatch` over the LRU-cached bi-directional backend (§4–5).
    PqJoinCached,
    /// PQ answered from a registered standing query's incrementally
    /// maintained match sets — no evaluation at all (§7, live serving).
    PqStanding,
}

impl Plan {
    /// Short label for reports.
    pub fn name(self) -> &'static str {
        match self {
            Plan::RqDm => "DM",
            Plan::RqHop => "hop",
            Plan::RqBiBfs => "biBFS",
            Plan::RqBfsMemo => "BFS+memo",
            Plan::PqJoinMatrix => "JoinMatch/DM",
            Plan::PqJoinCached => "JoinMatch/cache",
            Plan::PqStanding => "standing",
        }
    }
}

/// Choose the strategy for one RQ.
///
/// `matrix_available` — the distance matrix is (or will be) built for this
/// graph; `hop_usable` — the hop-label index is *built* and has a layer for
/// every color this regex probes (a background build still in flight, or a
/// wildcard layer dropped on budget, reads as `false` — the query falls
/// back to search rather than wait); `shared_in_batch` — at least one other
/// query in the batch has the same `(source predicate, regex)` key.
pub fn plan_rq(
    regex: &FRegex,
    matrix_available: bool,
    hop_usable: bool,
    shared_in_batch: bool,
) -> Plan {
    if matrix_available {
        Plan::RqDm
    } else if hop_usable {
        // near-constant atom probes beat both the shared memo and search
        Plan::RqHop
    } else if shared_in_batch {
        // the memo computes this reach set once for the whole batch
        Plan::RqBfsMemo
    } else if regex.atoms().len() >= 2 {
        Plan::RqBiBfs
    } else {
        Plan::RqBfsMemo
    }
}

/// Choose the strategy for one PQ.
pub fn plan_pq(matrix_available: bool) -> Plan {
    if matrix_available {
        Plan::PqJoinMatrix
    } else {
        Plan::PqJoinCached
    }
}

/// Choose the strategy for one PQ served from a live snapshot: a PQ equal
/// to a registered standing query is answered from its maintained match
/// sets — beating any evaluation strategy — and everything else falls back
/// to [`plan_pq`].
pub fn plan_pq_live(is_standing: bool, matrix_available: bool) -> Plan {
    if is_standing {
        Plan::PqStanding
    } else {
        plan_pq(matrix_available)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpq_graph::{Color, WILDCARD};
    use rpq_regex::{Atom, Quant};

    fn re(n: usize) -> FRegex {
        FRegex::new(
            (0..n)
                .map(|i| Atom::new(if i % 2 == 0 { Color(0) } else { WILDCARD }, Quant::One))
                .collect(),
        )
    }

    #[test]
    fn matrix_always_wins() {
        for atoms in 1..4 {
            for hop in [false, true] {
                for shared in [false, true] {
                    assert_eq!(plan_rq(&re(atoms), true, hop, shared), Plan::RqDm);
                }
            }
        }
        assert_eq!(plan_pq(true), Plan::PqJoinMatrix);
    }

    #[test]
    fn hop_labels_beat_every_search() {
        for atoms in 1..4 {
            for shared in [false, true] {
                assert_eq!(plan_rq(&re(atoms), false, true, shared), Plan::RqHop);
            }
        }
        assert_eq!(Plan::RqHop.name(), "hop");
    }

    #[test]
    fn sharing_prefers_memoized_bfs() {
        assert_eq!(plan_rq(&re(3), false, false, true), Plan::RqBfsMemo);
    }

    #[test]
    fn unshared_multi_atom_takes_bibfs() {
        assert_eq!(plan_rq(&re(2), false, false, false), Plan::RqBiBfs);
        assert_eq!(plan_rq(&re(1), false, false, false), Plan::RqBfsMemo);
        assert_eq!(plan_pq(false), Plan::PqJoinCached);
    }

    #[test]
    fn standing_answer_beats_everything() {
        assert_eq!(plan_pq_live(true, true), Plan::PqStanding);
        assert_eq!(plan_pq_live(true, false), Plan::PqStanding);
        assert_eq!(plan_pq_live(false, true), Plan::PqJoinMatrix);
        assert_eq!(plan_pq_live(false, false), Plan::PqJoinCached);
        assert_eq!(Plan::PqStanding.name(), "standing");
    }
}
