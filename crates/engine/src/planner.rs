//! Per-query strategy selection.
//!
//! The seed library makes callers hard-pick an RQ strategy
//! (`eval_with_matrix` / `eval_bibfs` / `eval_bfs`) and a PQ algorithm ×
//! backend; the engine chooses per query from four signals:
//!
//! * **index availability** — matrix probes are strictly cheapest when the
//!   per-color [`DistanceMatrix`](rpq_graph::DistanceMatrix) exists; the
//!   engine builds it lazily only for graphs under the configured node
//!   limit (its footprint is O(|Σ|·|V|²)). Above the limit, pruned 2-hop
//!   labels (`rpq_index::HopLabels`) take its place once their background
//!   build lands — label probes beat any per-query search, and the index
//!   costs memory proportional to label size, not |V|²;
//! * **batch shape** — when several queries in a batch share a
//!   `(source predicate, regex)` key, the memoized forward product search
//!   computes their reach set once, so sharing beats a per-query biBFS;
//! * **regex shape** — multi-atom expressions split well in the middle
//!   (biBFS meets after half the atoms); single-atom expressions gain
//!   nothing from bidirectionality, so they run the plain product BFS;
//! * **pattern shape** (PQs) — both §5 algorithms run over whichever
//!   reachability backend is available (matrix → hop labels → sharded
//!   labels → cached search, in that order of preference); between them,
//!   large cyclic patterns take `SplitMatch` and everything else
//!   `JoinMatch`, per the configurable crossover defaulting to the
//!   measured [`SPLIT_CROSSOVER`].

use rpq_core::pq::Pq;
use rpq_regex::FRegex;

/// The evaluation strategy chosen for one query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Plan {
    /// RQ via distance-matrix probes (`Rq::eval_with_matrix`, §4 "DM").
    RqDm,
    /// RQ via pruned 2-hop label probes (`Rq::eval_with_dist` over
    /// `rpq_index::HopLabels`) — the DM algorithm beyond the matrix node
    /// limit.
    RqHop,
    /// RQ via bi-directional search (`Rq::eval_bibfs`, §4 "biBFS").
    RqBiBfs,
    /// RQ via the forward product search, memoized per
    /// `(source predicate, regex)` across the batch (`§4 "BFS"`).
    RqBfsMemo,
    /// PQ via `JoinMatch` over the matrix backend (normalized, §5.1).
    PqJoinMatrix,
    /// PQ via `JoinMatch` over the pruned 2-hop label backend (normalized,
    /// §5.1 refinement with label-scan probes) — the PQ strategy beyond
    /// the matrix node limit.
    PqJoinHop,
    /// PQ via `JoinMatch` over the LRU-cached bi-directional backend (§4–5).
    PqJoinCached,
    /// PQ via `SplitMatch` over the matrix backend (§5.2) — picked for
    /// large/cyclic patterns past the measured crossover.
    PqSplitMatrix,
    /// PQ via `SplitMatch` over the hop-label backend (§5.2 beyond the
    /// matrix node limit).
    PqSplitHop,
    /// PQ via `SplitMatch` over the LRU-cached backend.
    PqSplitCached,
    /// RQ via sharded label probes (`Rq::eval_with_dist` over
    /// `rpq_index::ShardedLabels`) — the DM algorithm over a partitioned
    /// graph, picked when no single-machine index fits.
    RqSharded,
    /// PQ via `JoinMatch` over the sharded backend (per-shard labels
    /// stitched through the boundary overlay).
    PqJoinSharded,
    /// PQ via `SplitMatch` over the sharded backend. Servable (the parity
    /// suite evaluates it) but never the planner's pick — like the other
    /// label backends, bulk scans are cheap enough that `JoinMatch` stays
    /// ahead on every shape.
    PqSplitSharded,
    /// PQ answered from a registered standing query's incrementally
    /// maintained match sets — no evaluation at all (§7, live serving).
    PqStanding,
}

impl Plan {
    /// Short label for reports.
    pub fn name(self) -> &'static str {
        match self {
            Plan::RqDm => "DM",
            Plan::RqHop => "hop",
            Plan::RqBiBfs => "biBFS",
            Plan::RqBfsMemo => "BFS+memo",
            Plan::PqJoinMatrix => "JoinMatch/DM",
            Plan::PqJoinHop => "JoinMatch/hop",
            Plan::PqJoinCached => "JoinMatch/cache",
            Plan::PqSplitMatrix => "SplitMatch/DM",
            Plan::PqSplitHop => "SplitMatch/hop",
            Plan::PqSplitCached => "SplitMatch/cache",
            Plan::RqSharded => "sharded",
            Plan::PqJoinSharded => "JoinMatch/sharded",
            Plan::PqSplitSharded => "SplitMatch/sharded",
            Plan::PqStanding => "standing",
        }
    }
}

/// Choose the strategy for one RQ.
///
/// `matrix_available` — the distance matrix is (or will be) built for this
/// graph; `hop_usable` — the hop-label index is *built* and has a layer for
/// every color this regex probes (a background build still in flight, or a
/// wildcard layer dropped on budget, reads as `false` — the query falls
/// back to search rather than wait); `sharded_usable` — the partitioned
/// index is built and covers every probed color (the regime where even one
/// whole-graph label build busts the budget; label probes there stitch
/// through the boundary overlay, costlier than one-index probes but still
/// far ahead of per-query search); `shared_in_batch` — at least one other
/// query in the batch has the same `(source predicate, regex)` key.
pub fn plan_rq(
    regex: &FRegex,
    matrix_available: bool,
    hop_usable: bool,
    sharded_usable: bool,
    shared_in_batch: bool,
) -> Plan {
    plan_rq_explain(
        regex,
        matrix_available,
        hop_usable,
        sharded_usable,
        shared_in_batch,
    )
    .0
}

/// [`plan_rq`] plus the decision rationale (the explain/profile surface):
/// which signal won and the values it saw at decision time.
pub fn plan_rq_explain(
    regex: &FRegex,
    matrix_available: bool,
    hop_usable: bool,
    sharded_usable: bool,
    shared_in_batch: bool,
) -> (Plan, String) {
    if matrix_available {
        (
            Plan::RqDm,
            "distance matrix available: O(1) probes win".to_owned(),
        )
    } else if hop_usable {
        // near-constant atom probes beat both the shared memo and search
        (
            Plan::RqHop,
            "no matrix; hop labels cover every probed color".to_owned(),
        )
    } else if sharded_usable {
        // stitched label probes still beat every per-query search
        (
            Plan::RqSharded,
            "no matrix or single index; sharded labels cover every probed color".to_owned(),
        )
    } else if shared_in_batch {
        // the memo computes this reach set once for the whole batch
        (
            Plan::RqBfsMemo,
            "no index; (source, regex) key shared in batch — memoized BFS computes it once"
                .to_owned(),
        )
    } else if regex.atoms().len() >= 2 {
        (
            Plan::RqBiBfs,
            format!(
                "no index; {} atoms >= 2 — bidirectional search meets in the middle",
                regex.atoms().len()
            ),
        )
    } else {
        (
            Plan::RqBfsMemo,
            "no index; single-atom regex gains nothing from bidirectionality".to_owned(),
        )
    }
}

/// Default of [`EngineConfig::split_crossover`](crate::EngineConfig::split_crossover):
/// the normalized pattern size (`|Vp| + |Ep|` after the dummy-node
/// rewrite — what the refinement loop actually iterates over) at and
/// above which a **cyclic** pattern on the **matrix** backend plans
/// `SplitMatch` instead of `JoinMatch`.
///
/// Measured, not guessed — `cargo bench --bench pq` sweeps pattern size ×
/// shape on both index backends and prints the per-shape join/split
/// ratio. The measurement (1.5k-node youtube-like graph, ring vs chain
/// patterns, loose and selective predicates): on acyclic patterns
/// `JoinMatch`'s reverse-topological component order wins at every size
/// (join/split 0.87 → 0.07 as chains grow). On cyclic patterns the
/// backends diverge: over the **matrix** the two run at parity within
/// noise (0.94–1.02) from size ~8 upward — both share the same bulk
/// refinement primitive and a whole-pattern SCC gives them the same
/// worklist — so past this crossover the planner prefers `SplitMatch`
/// there, whose monotonically refining partition bounds per-round
/// bookkeeping by blocks rather than nodes (the §5.2 regime) at no
/// measured cost. Over **hop labels** the bulk label scans are so cheap
/// that `SplitMatch`'s partition bookkeeping dominates and `JoinMatch`
/// wins every measured cyclic size by 1.3–2x (ratios 0.45–0.76), so the
/// hop and cached backends keep `JoinMatch` for every shape.
pub const SPLIT_CROSSOVER: usize = 16;

/// The shape signals [`plan_pq`] needs from a pattern: its normalized size
/// (nodes + edges counting every regex atom, i.e. post-dummy-rewrite) and
/// whether its query graph is cyclic.
fn pattern_shape(pq: &Pq) -> (usize, bool) {
    let atoms: usize = pq.edges().iter().map(|e| e.regex.len()).sum();
    // the dummy rewrite adds one node and one edge per extra atom
    let size = pq.size() + 2 * atoms.saturating_sub(pq.edge_count());
    (size, pq.has_cycle())
}

/// Choose the strategy for one PQ from backend availability and pattern
/// shape.
///
/// Backend: the matrix wins when available (O(1) probes); otherwise hop
/// labels when built and covering every color the pattern probes
/// (`hop_usable`); otherwise the sharded backend under the same coverage
/// rule (`sharded_usable`); otherwise the LRU-cached product search.
/// Shape: on the matrix backend, cyclic patterns of normalized size ≥
/// `split_crossover` take `SplitMatch` (§5.2) — the threshold is an
/// [`EngineConfig`](crate::EngineConfig) knob defaulting to the measured
/// [`SPLIT_CROSSOVER`]; every other combination measured `JoinMatch`
/// ahead — see the crossover constant for the numbers. The split
/// variants of the other backends ([`Plan::PqSplitHop`],
/// [`Plan::PqSplitCached`], [`Plan::PqSplitSharded`]) stay servable (the
/// parity suite and benches evaluate them directly) but are never the
/// planner's pick.
pub fn plan_pq(
    pq: &Pq,
    matrix_available: bool,
    hop_usable: bool,
    sharded_usable: bool,
    split_crossover: usize,
) -> Plan {
    plan_pq_explain(
        pq,
        matrix_available,
        hop_usable,
        sharded_usable,
        split_crossover,
    )
    .0
}

/// [`plan_pq`] plus the decision rationale (the explain/profile surface),
/// including the pattern-shape numbers and crossover value seen at
/// decision time.
pub fn plan_pq_explain(
    pq: &Pq,
    matrix_available: bool,
    hop_usable: bool,
    sharded_usable: bool,
    split_crossover: usize,
) -> (Plan, String) {
    let (size, cyclic) = pattern_shape(pq);
    let split = cyclic && size >= split_crossover;
    match (matrix_available, hop_usable, sharded_usable) {
        (true, _, _) if split => (
            Plan::PqSplitMatrix,
            format!(
                "matrix backend; cyclic pattern, normalized size {size} >= crossover \
                 {split_crossover} — SplitMatch bounds per-round bookkeeping by blocks"
            ),
        ),
        (true, _, _) => (
            Plan::PqJoinMatrix,
            format!(
                "matrix backend; {} pattern, normalized size {size} (crossover \
                 {split_crossover}) — JoinMatch's reverse-topological order wins",
                if cyclic { "cyclic" } else { "acyclic" }
            ),
        ),
        (false, true, _) => (
            Plan::PqJoinHop,
            format!(
                "no matrix; hop labels cover every probed color — JoinMatch ahead of \
                 split on label backends at every size (normalized size {size})"
            ),
        ),
        (false, false, true) => (
            Plan::PqJoinSharded,
            "no matrix or single index; sharded labels cover every probed color".to_owned(),
        ),
        (false, false, false) => (
            Plan::PqJoinCached,
            "no usable index; LRU-cached bidirectional probes".to_owned(),
        ),
    }
}

/// Choose the strategy for one PQ served from a live snapshot: a PQ equal
/// to a registered standing query is answered from its maintained match
/// sets — beating any evaluation strategy — and everything else falls back
/// to [`plan_pq`] with the snapshot's index state (in particular, a live
/// snapshot whose hop-label build has landed serves `PqJoinHop`/`PqSplitHop`,
/// never the cached fallback).
pub fn plan_pq_live(
    pq: &Pq,
    is_standing: bool,
    matrix_available: bool,
    hop_usable: bool,
    sharded_usable: bool,
    split_crossover: usize,
) -> Plan {
    plan_pq_live_explain(
        pq,
        is_standing,
        matrix_available,
        hop_usable,
        sharded_usable,
        split_crossover,
    )
    .0
}

/// [`plan_pq_live`] plus the decision rationale.
pub fn plan_pq_live_explain(
    pq: &Pq,
    is_standing: bool,
    matrix_available: bool,
    hop_usable: bool,
    sharded_usable: bool,
    split_crossover: usize,
) -> (Plan, String) {
    if is_standing {
        (
            Plan::PqStanding,
            "pattern equals a registered standing query — answered from its \
             incrementally maintained match sets, no evaluation"
                .to_owned(),
        )
    } else {
        plan_pq_explain(
            pq,
            matrix_available,
            hop_usable,
            sharded_usable,
            split_crossover,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpq_core::predicate::Predicate;
    use rpq_graph::{Color, WILDCARD};
    use rpq_regex::{Atom, Quant};

    fn re(n: usize) -> FRegex {
        FRegex::new(
            (0..n)
                .map(|i| Atom::new(if i % 2 == 0 { Color(0) } else { WILDCARD }, Quant::One))
                .collect(),
        )
    }

    /// Acyclic chain of `edges` single-atom edges.
    fn chain(edges: usize) -> Pq {
        let mut pq = Pq::new();
        let mut prev = pq.add_node("n0", Predicate::always_true());
        for i in 0..edges {
            let next = pq.add_node(&format!("n{}", i + 1), Predicate::always_true());
            pq.add_edge(prev, next, re(1));
            prev = next;
        }
        pq
    }

    /// Directed ring of `edges` single-atom edges (cyclic for `edges ≥ 1`).
    fn ring(edges: usize) -> Pq {
        let mut pq = Pq::new();
        let nodes: Vec<usize> = (0..edges)
            .map(|i| pq.add_node(&format!("n{i}"), Predicate::always_true()))
            .collect();
        for i in 0..edges {
            pq.add_edge(nodes[i], nodes[(i + 1) % edges], re(1));
        }
        pq
    }

    #[test]
    fn matrix_always_wins() {
        for atoms in 1..4 {
            for hop in [false, true] {
                for shared in [false, true] {
                    assert_eq!(plan_rq(&re(atoms), true, hop, false, shared), Plan::RqDm);
                }
            }
        }
        for hop in [false, true] {
            assert_eq!(
                plan_pq(&chain(2), true, hop, false, SPLIT_CROSSOVER),
                Plan::PqJoinMatrix
            );
        }
    }

    #[test]
    fn hop_labels_beat_every_search() {
        for atoms in 1..4 {
            for shared in [false, true] {
                assert_eq!(plan_rq(&re(atoms), false, true, false, shared), Plan::RqHop);
            }
        }
        assert_eq!(Plan::RqHop.name(), "hop");
        assert_eq!(
            plan_pq(&chain(2), false, true, false, SPLIT_CROSSOVER),
            Plan::PqJoinHop
        );
        assert_eq!(
            plan_pq(&chain(2), false, false, false, SPLIT_CROSSOVER),
            Plan::PqJoinCached
        );
    }

    #[test]
    fn sharded_backend_slots_between_hop_and_search() {
        // sharded probes beat every search but lose to a single index
        for atoms in 1..4 {
            for shared in [false, true] {
                assert_eq!(
                    plan_rq(&re(atoms), false, false, true, shared),
                    Plan::RqSharded
                );
                assert_eq!(plan_rq(&re(atoms), false, true, true, shared), Plan::RqHop);
            }
            assert_eq!(plan_rq(&re(atoms), true, false, true, false), Plan::RqDm);
        }
        assert_eq!(Plan::RqSharded.name(), "sharded");
        assert_eq!(
            plan_pq(&chain(2), false, false, true, SPLIT_CROSSOVER),
            Plan::PqJoinSharded
        );
        assert_eq!(
            plan_pq(&chain(2), false, true, true, SPLIT_CROSSOVER),
            Plan::PqJoinHop
        );
        // like hop/cached, the sharded split variant is never the pick
        let big_ring = ring(SPLIT_CROSSOVER);
        assert_eq!(
            plan_pq(&big_ring, false, false, true, SPLIT_CROSSOVER),
            Plan::PqJoinSharded
        );
        assert_eq!(Plan::PqJoinSharded.name(), "JoinMatch/sharded");
        assert_eq!(Plan::PqSplitSharded.name(), "SplitMatch/sharded");
    }

    #[test]
    fn split_crossover_is_tunable() {
        // the satellite lift: the crossover is a config value, not a
        // baked-in constant — a deployment can move it and plans follow
        let small_ring = ring(3); // normalized size 6
        assert!(small_ring.has_cycle());
        assert_eq!(
            plan_pq(&small_ring, true, false, false, SPLIT_CROSSOVER),
            Plan::PqJoinMatrix
        );
        assert_eq!(
            plan_pq(&small_ring, true, false, false, 6),
            Plan::PqSplitMatrix
        );
        assert_eq!(
            plan_pq(&small_ring, true, false, false, usize::MAX),
            Plan::PqJoinMatrix,
            "usize::MAX disables split entirely"
        );
    }

    #[test]
    fn sharing_prefers_memoized_bfs() {
        assert_eq!(plan_rq(&re(3), false, false, false, true), Plan::RqBfsMemo);
    }

    #[test]
    fn unshared_multi_atom_takes_bibfs() {
        assert_eq!(plan_rq(&re(2), false, false, false, false), Plan::RqBiBfs);
        assert_eq!(plan_rq(&re(1), false, false, false, false), Plan::RqBfsMemo);
        assert_eq!(
            plan_pq(&chain(1), false, false, false, SPLIT_CROSSOVER),
            Plan::PqJoinCached
        );
    }

    #[test]
    fn split_takes_large_cyclic_patterns_on_the_matrix_only() {
        // a big ring is cyclic and past the crossover: split on the
        // matrix backend, where the two algorithms measured at parity
        let big_ring = ring(SPLIT_CROSSOVER); // normalized size = 2·edges
        assert!(big_ring.has_cycle());
        let pp = |pq: &Pq, m: bool, h: bool| plan_pq(pq, m, h, false, SPLIT_CROSSOVER);
        assert_eq!(pp(&big_ring, true, false), Plan::PqSplitMatrix);
        // hop and cached backends measured JoinMatch ahead on every
        // cyclic size — the planner never picks their split variants
        assert_eq!(pp(&big_ring, false, true), Plan::PqJoinHop);
        assert_eq!(pp(&big_ring, false, false), Plan::PqJoinCached);
        // a chain of the same size is acyclic: join keeps it
        let big_chain = chain(SPLIT_CROSSOVER);
        assert_eq!(pp(&big_chain, true, false), Plan::PqJoinMatrix);
        assert_eq!(pp(&big_chain, false, true), Plan::PqJoinHop);
        // a tiny cycle stays under the crossover: join again
        let small_ring = ring(2);
        assert!(small_ring.has_cycle());
        assert_eq!(pp(&small_ring, true, false), Plan::PqJoinMatrix);
        // multi-atom regexes count toward normalized size: a ring whose
        // edges each expand to several atoms crosses over sooner
        let mut fat_ring = ring(2);
        let a = fat_ring.add_node("a", Predicate::always_true());
        fat_ring.add_edge(0, a, re(SPLIT_CROSSOVER));
        assert_eq!(pp(&fat_ring, true, false), Plan::PqSplitMatrix);
    }

    #[test]
    fn standing_answer_beats_everything() {
        let pq = ring(SPLIT_CROSSOVER);
        let pl = |pq: &Pq, st: bool, m: bool, h: bool| {
            plan_pq_live(pq, st, m, h, false, SPLIT_CROSSOVER)
        };
        for m in [false, true] {
            for h in [false, true] {
                assert_eq!(pl(&pq, true, m, h), Plan::PqStanding);
            }
        }
        assert_eq!(pl(&pq, false, true, false), Plan::PqSplitMatrix);
        // the satellite fix: a live snapshot with a built index must plan
        // hop, never silently fall back to the cached plan
        assert_eq!(pl(&chain(2), false, false, true), Plan::PqJoinHop);
        assert_eq!(pl(&pq, false, false, true), Plan::PqJoinHop);
        assert_eq!(pl(&chain(2), false, false, false), Plan::PqJoinCached);
        assert_eq!(
            plan_pq_live(&chain(2), false, false, false, true, SPLIT_CROSSOVER),
            Plan::PqJoinSharded,
            "a live snapshot with a sharded index never serves the cached fallback"
        );
        assert_eq!(Plan::PqStanding.name(), "standing");
    }
}
