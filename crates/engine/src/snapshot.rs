//! Immutable, versioned read views of a live graph: [`Snapshot`].
//!
//! A snapshot is what readers of an [`UpdatableEngine`](crate::UpdatableEngine)
//! actually query. It freezes together
//!
//! * one graph version (an `Arc<Graph>` shared with the writer that
//!   published it),
//! * the indices for that version — the lazily-built
//!   [`DistanceMatrix`](rpq_graph::DistanceMatrix) (small graphs) or
//!   hop-label index (`rpq_index::HopLabels`, built in the background off
//!   the first over-limit batch) inside an owned [`QueryEngine`], plus a
//!   snapshot-lifetime [`ReachMemo`] — all *versioned with the snapshot*:
//!   an update batch publishes a fresh snapshot with fresh (lazily
//!   rebuilt) indices, so no reader ever sees an index computed against a
//!   different graph version. Until a version's label build lands, its
//!   queries fall back to search — stale indices are never consulted —
//!   and publishing a newer version retires the superseded build
//!   ([`QueryEngine::retire_index_builds`]), and
//! * the standing answers: for every registered standing PQ, the match
//!   sets maintained by
//!   [`IncrementalMatcher`](rpq_core::incremental::IncrementalMatcher) as
//!   of this version, pre-assembled into a [`PqResult`].
//!
//! Because a snapshot owns `Arc`s of everything it needs, batches keep
//! running against it — unaffected — while writers publish newer versions:
//! that is the snapshot-isolation guarantee the live tests assert.

use crate::batch::{BatchItem, BatchResult, Query, QueryOutput};
use crate::engine::QueryEngine;
use crate::memo::ReachMemo;
use crate::planner::{self, Plan};
use crate::updatable::StandingId;
use rpq_core::pq::{Pq, PqResult};
use rpq_graph::{Graph, NodeId};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// One registered standing query as of a snapshot's version: the
/// maintained match sets, and the full per-edge [`PqResult`] assembled
/// lazily on first read (assembly runs reachability probes per pattern
/// edge — paying it inside the writer's `apply` for answers nobody reads
/// would serialize that work under the writer lock).
#[derive(Debug, Clone)]
pub(crate) struct StandingEntry {
    pub(crate) pq: Pq,
    pub(crate) mats: Arc<Vec<Vec<NodeId>>>,
    /// shared across republished snapshots of the same version, so the
    /// answer is assembled at most once per (query, version)
    pub(crate) cell: Arc<OnceLock<Arc<PqResult>>>,
}

impl StandingEntry {
    pub(crate) fn new(pq: Pq, mats: Vec<Vec<NodeId>>) -> Self {
        StandingEntry {
            pq,
            mats: Arc::new(mats),
            cell: Arc::new(OnceLock::new()),
        }
    }

    fn answer(&self, g: &Graph) -> Arc<PqResult> {
        Arc::clone(self.cell.get_or_init(|| {
            Arc::new(if self.mats.iter().any(|m| m.is_empty()) {
                PqResult::empty(&self.pq)
            } else {
                rpq_core::join_match::assemble(&self.pq, g, &self.mats)
            })
        }))
    }
}

/// How this snapshot came by its label index (hop or sharded), published
/// by [`UpdatableEngine::apply`](crate::UpdatableEngine::apply) so
/// operators and tests can see whether the update path is *carrying*
/// indices forward or perpetually rebuilding them.
///
/// * [`Repaired`](IndexState::Repaired) — the predecessor snapshot's
///   label index was carried through an incremental repair and adopted
///   by this snapshot's engine: label-backed plans are available
///   immediately, no rebuild is running.
/// * [`Rebuilding`](IndexState::Rebuilding) — this version's
///   configuration calls for a label index but none could be carried
///   (the predecessor had not finished building one, or the repair cost
///   model declined — too many landmarks invalidated, too many shards
///   touched, or over budget). Queries fall back to search until the
///   background build for *this* version lands.
/// * [`Stale`](IndexState::Stale) — no label index is part of this
///   deployment's plan for this graph (matrix regime, or labels disabled
///   by config): there was nothing to carry and nothing to rebuild. The
///   name is the operator's view from the update stream: whatever label
///   state existed before the stream is not coming back by itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexState {
    /// Label index carried forward via incremental repair.
    Repaired,
    /// Label index pending a (background) rebuild for this version.
    Rebuilding,
    /// No label index applies to this snapshot.
    Stale,
}

impl IndexState {
    /// Stable lowercase name, used by the `/metrics` endpoint.
    pub fn as_str(self) -> &'static str {
        match self {
            IndexState::Repaired => "repaired",
            IndexState::Rebuilding => "rebuilding",
            IndexState::Stale => "stale",
        }
    }
}

/// A consistent, immutable view of the graph at one version, with its own
/// indices and the standing answers maintained up to that version.
///
/// Obtained from [`UpdatableEngine::snapshot`](crate::UpdatableEngine::snapshot)
/// (or an [`ApplyReport`](crate::ApplyReport)); cheap to clone the `Arc`
/// and safe to query from any thread for as long as the caller keeps it.
#[derive(Debug)]
pub struct Snapshot {
    version: u64,
    engine: Arc<QueryEngine>,
    memo: Arc<ReachMemo>,
    standing: Vec<StandingEntry>,
    index_state: IndexState,
}

impl Snapshot {
    pub(crate) fn new(
        version: u64,
        engine: Arc<QueryEngine>,
        memo: Arc<ReachMemo>,
        standing: Vec<StandingEntry>,
        index_state: IndexState,
    ) -> Self {
        Snapshot {
            version,
            engine,
            memo,
            standing,
            index_state,
        }
    }

    /// How this snapshot came by its label index: carried through an
    /// incremental [`Repaired`](IndexState::Repaired) step, pending a
    /// [`Rebuilding`](IndexState::Rebuilding) background build, or
    /// [`Stale`](IndexState::Stale) (no label index applies). See
    /// [`IndexState`] for the full contract; the per-batch numbers behind
    /// a `Repaired` verdict ride on
    /// [`ApplyReport::index`](crate::ApplyReport).
    pub fn index_state(&self) -> IndexState {
        self.index_state
    }

    /// The graph version this snapshot serves (the
    /// [`DynamicGraph`](rpq_core::incremental::DynamicGraph) batch counter
    /// at publication time).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The graph image at this version.
    pub fn graph(&self) -> &Arc<Graph> {
        self.engine.graph()
    }

    /// The per-version batch engine (shared indices live here).
    pub fn engine(&self) -> &QueryEngine {
        &self.engine
    }

    pub(crate) fn engine_arc(&self) -> Arc<QueryEngine> {
        Arc::clone(&self.engine)
    }

    pub(crate) fn memo_arc(&self) -> Arc<ReachMemo> {
        Arc::clone(&self.memo)
    }

    /// Cumulative counters of this snapshot's semantic reach-cache —
    /// exact hits, subsumption hits, misses, and filter time — since the
    /// snapshot was published (the memo is versioned with the snapshot,
    /// so a fresh version starts from zero). The server's `/metrics`
    /// exposition accumulates deltas of these across batches.
    pub fn semantic_stats(&self) -> crate::memo::SemanticStats {
        self.memo.semantic_stats()
    }

    pub(crate) fn standing_entries(&self) -> &[StandingEntry] {
        &self.standing
    }

    /// Number of standing queries this snapshot carries answers for.
    pub fn standing_count(&self) -> usize {
        self.standing.len()
    }

    /// The maintained answer of standing query `id` as of this version
    /// (`None` if `id` was registered after this snapshot was published).
    /// Assembled from the maintained match sets on first read, then cached
    /// for the life of the version.
    pub fn standing_result(&self, id: StandingId) -> Option<Arc<PqResult>> {
        self.standing
            .get(id.index())
            .map(|s| s.answer(self.graph()))
    }

    /// Find a standing entry that can serve `pq` *bit-identically*:
    /// structural equality, or [`rpq_core::pq_same_shape`] — the same node
    /// and edge structure with language-equal (canonical-form) regex
    /// spellings — so syntactic variants of a registered query are served
    /// from the maintained match sets too. Variants that additionally
    /// permute node order are deduplicated at registration time instead
    /// ([`UpdatableEngine::register_pq`](crate::UpdatableEngine::register_pq)),
    /// where the isomorphism is known and the match sets can be remapped.
    fn standing_match(&self, pq: &Pq) -> Option<usize> {
        self.standing
            .iter()
            .position(|s| rpq_core::pq_same_shape(&s.pq, pq))
    }

    /// The plan this snapshot would pick for `query`: a PQ equal to a
    /// registered standing query is served from its maintained match sets
    /// ([`Plan::PqStanding`]); everything else gets the batch engine's
    /// plan — including this version's hop-label index once its build has
    /// landed, so a live snapshot never silently serves the cached
    /// fallback past that point.
    pub fn plan_query(&self, query: &Query) -> Plan {
        match query {
            Query::Pq(pq) => planner::plan_pq_live(
                pq,
                self.standing_match(pq).is_some(),
                self.engine.matrix_available(),
                self.engine.hop_usable_for_pq(pq),
                self.engine.sharded_usable_for_pq(pq),
                self.engine.config().split_crossover,
            ),
            Query::Rq(_) => self.engine.plan_query(query),
        }
    }

    /// Evaluate one query against this snapshot (standing answers are
    /// served without evaluation; everything else reuses the snapshot's
    /// memo and indices).
    pub fn run_query(&self, query: &Query) -> QueryOutput {
        if let Query::Pq(pq) = query {
            if let Some(i) = self.standing_match(pq) {
                return QueryOutput::Pq(self.standing[i].answer(self.graph()));
            }
        }
        self.engine.run_query_with_memo(query, &self.memo)
    }

    /// Evaluate one query with its execution profile (the snapshot's
    /// explain surface). A PQ equal to a registered standing query is
    /// served from the maintained match sets and profiled as a
    /// [`Plan::PqStanding`] answer (one `standing-answer` stage covering
    /// lazy assembly); everything else delegates to the engine's
    /// detailed profiled path, planned with this snapshot's live state.
    pub fn run_query_profiled(&self, query: &Query) -> (QueryOutput, rpq_trace::QueryProfile) {
        if let Query::Pq(pq) = query {
            if let Some(i) = self.standing_match(pq) {
                let t0 = Instant::now();
                let (plan, rationale) = planner::plan_pq_live_explain(
                    pq,
                    true,
                    self.engine.matrix_available(),
                    self.engine.hop_usable_for_pq(pq),
                    self.engine.sharded_usable_for_pq(pq),
                    self.engine.config().split_crossover,
                );
                let g = self.graph();
                let mut profile = rpq_trace::QueryProfile::new(
                    format!("standing pq #{i} (version {})", self.version),
                    plan.name().to_owned(),
                    rationale,
                );
                let t1 = Instant::now();
                profile.stage(
                    "plan",
                    t1 - t0,
                    "matched registered standing query".to_owned(),
                );
                let assembled = self.standing[i].cell.get().is_some();
                let output = QueryOutput::Pq(self.standing[i].answer(g));
                let t2 = Instant::now();
                profile.stage(
                    "standing-answer",
                    t2 - t1,
                    if assembled {
                        "answer already assembled for this version".to_owned()
                    } else {
                        "assembled from maintained match sets (first read)".to_owned()
                    },
                );
                profile.matches = output.match_count() as u64;
                profile.wall = t2 - t0;
                return (output, profile);
            }
        }
        self.engine.run_query_profiled_with_memo(query, &self.memo)
    }

    /// Evaluate a batch against this snapshot. Identical to
    /// [`QueryEngine::run_batch`] except that
    ///
    /// * PQs equal to a registered standing query are answered from the
    ///   maintained match sets (plan [`Plan::PqStanding`]) instead of being
    ///   re-evaluated, and
    /// * reach sets are shared through the snapshot-lifetime memo, so hot
    ///   keys are computed once per graph version rather than once per
    ///   batch.
    pub fn run_batch(&self, queries: &[Query]) -> BatchResult {
        let t0 = Instant::now();
        let standing_of: Vec<Option<usize>> = queries
            .iter()
            .map(|q| match q {
                Query::Pq(pq) => self.standing_match(pq),
                Query::Rq(_) => None,
            })
            .collect();
        if standing_of.iter().all(Option::is_none) {
            return self.engine.run_batch_with_memo(queries, &self.memo);
        }

        let rest: Vec<Query> = queries
            .iter()
            .zip(&standing_of)
            .filter(|(_, s)| s.is_none())
            .map(|(q, _)| q.clone())
            .collect();
        let sub = self.engine.run_batch_with_memo(&rest, &self.memo);
        let workers = sub.workers();
        let memo_stats = sub.memo_stats();
        let mut rest_items = sub.into_items().into_iter();
        let items: Vec<BatchItem> = standing_of
            .iter()
            .map(|s| match s {
                Some(i) => {
                    let t = Instant::now();
                    let output = QueryOutput::Pq(self.standing[*i].answer(self.graph()));
                    BatchItem {
                        output,
                        plan: Plan::PqStanding,
                        time: t.elapsed(),
                        profile: None,
                    }
                }
                None => rest_items
                    .next()
                    .expect("one evaluated item per non-standing query"),
            })
            .collect();
        BatchResult::new(items, t0.elapsed(), workers, memo_stats)
    }
}
