//! The [`ShardedEngine`]: scatter-gather batch serving over a
//! partitioned graph.
//!
//! Where [`QueryEngine`] treats the sharded index as a *fallback* (built
//! in the background once a single-index build has failed its budget),
//! this engine makes the shard topology the primary regime — what a
//! deployment runs when the graph is known up front to exceed any
//! single-index budget:
//!
//! * **build scatter** — construction partitions the graph (or adopts a
//!   caller-supplied [`ShardedGraph`] partition) and builds the `k`
//!   per-shard label indices on a per-shard worker set, each under the
//!   configured per-shard memory budget, then labels the boundary
//!   overlay; the constructor returns the build error eagerly instead of
//!   degrading to search plans;
//! * **query scatter-gather** — batches fan out over worker threads
//!   exactly like [`QueryEngine::run_batch`] (the engine *is* one,
//!   pinned to sharded plans), and each index-backed PQ additionally
//!   chunks its bulk refinement steps across the idle worker budget
//!   ([`rpq_core::reach::ProbeReach::with_workers`]), so one big pattern
//!   query saturates all shards' labels at once; results gather in
//!   submission order, bit-identical to any other backend.
//!
//! Plans come out as [`Plan::RqSharded`](crate::Plan::RqSharded) /
//! [`Plan::PqJoinSharded`](crate::Plan::PqJoinSharded) — the existing
//! RQ/PQ evaluation algorithms run unchanged over the stitched
//! [`DistProbe`](rpq_index::DistProbe); only the probe changes.

use crate::engine::{EngineConfig, QueryEngine};
use crate::error::EngineError;
use crate::memo::{ReachMemo, SemanticStats};
use rpq_graph::{Graph, ShardedGraph};
use rpq_index::{ShardedConfig, ShardedLabels, ShardedStats};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A batch engine whose one index is the sharded backend: `k` per-shard
/// hop-label indices plus boundary-overlay labels, built eagerly at
/// construction. See the module docs.
///
/// Unlike the bare [`QueryEngine`] (whose `run_*` entry points spin up a
/// throwaway memo per call), the sharded engine owns an engine-lifetime
/// [`ReachMemo`], so repeated and semantically-contained RQ traffic is
/// served from cache across calls and the cache's hit/miss counters are
/// visible in profiles ([`ShardedEngine::semantic_stats`]). The graph is
/// immutable for the life of the engine, so no invalidation is needed.
#[derive(Debug)]
pub struct ShardedEngine {
    inner: QueryEngine,
    labels: Arc<ShardedLabels>,
    memo: Arc<ReachMemo>,
    build_time: Duration,
}

impl ShardedEngine {
    /// Partition `graph` into `config.shards` pieces and build the
    /// sharded index (parallel per-shard builds, each under
    /// `config.shard_memory_budget` bytes; `0` = unlimited). Fails
    /// eagerly when any per-shard build exceeds its budget.
    ///
    /// `config.shards` is honored as given (clamped to `1..=|V|` by the
    /// partitioner): `shards: 1` yields a single-shard topology — no cut
    /// edges, no overlay stitch cost — which is occasionally useful as a
    /// baseline but serves no scaling purpose.
    pub fn build(graph: Arc<Graph>, config: EngineConfig) -> Result<Self, EngineError> {
        let sharded_config = ShardedConfig {
            shards: config.shards.max(1),
            shard_budget_bytes: config.shard_memory_budget,
            wildcard_layer: true,
            build_workers: 0,
        };
        let t0 = Instant::now();
        let labels = Arc::new(ShardedLabels::build_with(&graph, &sharded_config, None)?);
        Ok(Self::with_labels(graph, config, labels, t0.elapsed()))
    }

    /// Build over a caller-partitioned [`ShardedGraph`] (external
    /// partitioners, benches pinning a specific cut).
    pub fn build_on(sharded: Arc<ShardedGraph>, config: EngineConfig) -> Result<Self, EngineError> {
        let sharded_config = ShardedConfig {
            shards: sharded.k(),
            shard_budget_bytes: config.shard_memory_budget,
            wildcard_layer: true,
            build_workers: 0,
        };
        let t0 = Instant::now();
        let graph = Arc::clone(sharded.graph());
        let labels = Arc::new(ShardedLabels::build_on(sharded, &sharded_config, None)?);
        Ok(Self::with_labels(graph, config, labels, t0.elapsed()))
    }

    fn with_labels(
        graph: Arc<Graph>,
        config: EngineConfig,
        labels: Arc<ShardedLabels>,
        build_time: Duration,
    ) -> Self {
        // pin the sharded regime: no matrix, no single-index build racing
        // the batch planner — every plannable query takes a sharded plan
        let inner = QueryEngine::with_config(
            graph,
            EngineConfig {
                matrix_node_limit: 0,
                hop_label_budget: 0,
                shards: labels.sharded_graph().k(),
                ..config
            },
        );
        inner.adopt_sharded_labels(Arc::clone(&labels));
        ShardedEngine {
            inner,
            labels,
            memo: Arc::new(ReachMemo::persistent()),
            build_time,
        }
    }

    /// The global graph.
    pub fn graph(&self) -> &Arc<Graph> {
        self.inner.graph()
    }

    /// The partitioned storage (shards, boundary, cut edges).
    pub fn sharded_graph(&self) -> &Arc<ShardedGraph> {
        self.labels.sharded_graph()
    }

    /// The stitched index itself.
    pub fn labels(&self) -> &Arc<ShardedLabels> {
        &self.labels
    }

    /// Index shape and per-shard footprints (the numbers the per-shard
    /// budget caps).
    pub fn stats(&self) -> ShardedStats {
        self.labels.stats()
    }

    /// Wall-clock time of the partition + parallel index build.
    pub fn build_time(&self) -> Duration {
        self.build_time
    }

    /// The engine-lifetime reach-set memo every
    /// [`QueryService`](crate::QueryService) call on this engine runs
    /// against (the bare inner engine uses a throwaway memo per call).
    pub fn memo(&self) -> &Arc<ReachMemo> {
        &self.memo
    }

    /// Cumulative semantic-cache counters — exact hits, subsumption
    /// hits, misses, and time spent filtering cached reach sets — for
    /// all queries served through this engine since construction.
    pub fn semantic_stats(&self) -> SemanticStats {
        self.memo.semantic_stats()
    }

    /// The inner batch engine, pinned to the sharded regime. Querying goes
    /// through [`QueryService`](crate::QueryService) — plans come out as
    /// [`Plan::RqSharded`](crate::Plan::RqSharded) /
    /// [`Plan::PqJoinSharded`](crate::Plan::PqJoinSharded) whenever the
    /// index covers the probed colors, search fallbacks otherwise (a
    /// dropped wildcard layer).
    pub fn engine(&self) -> &QueryEngine {
        &self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::Query;
    use crate::planner::Plan;
    use crate::service::QueryService;
    use rpq_core::pq::Pq;
    use rpq_core::predicate::Predicate;
    use rpq_core::rq::Rq;
    use rpq_regex::FRegex;

    fn rq(g: &Graph, from: &str, to: &str, re: &str) -> Rq {
        Rq::new(
            Predicate::parse(from, g.schema()).unwrap(),
            Predicate::parse(to, g.schema()).unwrap(),
            FRegex::parse(re, g.alphabet()).unwrap(),
        )
    }

    #[test]
    fn sharded_engine_serves_sharded_plans() {
        let g = Arc::new(rpq_graph::gen::clustered(500, 2000, 4, 2, 3, 60, 17));
        let engine = ShardedEngine::build(
            Arc::clone(&g),
            EngineConfig {
                shards: 4,
                workers: 2,
                ..EngineConfig::default()
            },
        )
        .expect("unbudgeted build");
        assert_eq!(engine.sharded_graph().k(), 4);
        assert!(engine.stats().wildcard);
        assert!(engine.build_time() > Duration::ZERO);

        let q = rq(&g, "a0 <= 4", "a1 >= 6", "c0^2 c1");
        assert_eq!(engine.plan_query(&Query::Rq(q.clone())), Plan::RqSharded);

        let mut pq = Pq::new();
        let a = pq.add_node("a", Predicate::parse("a0 <= 3", g.schema()).unwrap());
        let b = pq.add_node("b", Predicate::parse("a1 >= 5", g.schema()).unwrap());
        pq.add_edge(a, b, FRegex::parse("c0 c1", g.alphabet()).unwrap());
        assert_eq!(
            engine.plan_query(&Query::Pq(pq.clone())),
            Plan::PqJoinSharded
        );

        let batch = engine.run_batch(&[Query::Rq(q.clone()), Query::Pq(pq.clone())]);
        assert_eq!(batch.items()[0].plan, Plan::RqSharded);
        assert_eq!(batch.items()[1].plan, Plan::PqJoinSharded);
        // bit-identical to the search references
        assert_eq!(batch.items()[0].output.as_rq().unwrap(), &q.eval_bfs(&g));
        assert_eq!(batch.items()[1].output.as_pq().unwrap(), &pq.eval_naive(&g));
    }

    #[test]
    fn sharded_profiles_report_persistent_memo_hits() {
        let g = Arc::new(rpq_graph::gen::clustered(400, 1600, 4, 2, 3, 60, 23));
        let engine = ShardedEngine::build(
            Arc::clone(&g),
            EngineConfig {
                shards: 3,
                workers: 1,
                ..EngineConfig::default()
            },
        )
        .expect("unbudgeted build");

        let q = Query::Rq(rq(&g, "a0 <= 4", "a1 >= 6", "c0^2 c1"));
        let (out0, p0) = engine.run_query_profiled(&q);
        assert_eq!(p0.semcache, "miss", "cold query populates the memo");

        // the second identical query is served from the engine-lifetime
        // memo — visible both in the profile and in the engine counters
        let (out1, p1) = engine.run_query_profiled(&q);
        assert_eq!(out0, out1);
        assert_eq!(p1.semcache, "exact_hit");
        let stats = engine.semantic_stats();
        assert_eq!(stats.exact_hits, 1);
        assert_eq!(stats.misses, 1);

        // a narrower-predicate variant is answered by subsumption from
        // the same cached cell
        let narrow = Query::Rq(rq(&g, "a0 <= 2", "a1 >= 6", "c0^2 c1"));
        let (out2, p2) = engine.run_query_profiled(&narrow);
        assert_eq!(p2.semcache, "subsumption_hit");
        assert_eq!(
            out2.as_rq().unwrap(),
            &match &narrow {
                Query::Rq(r) => r.eval_bfs(&g),
                Query::Pq(_) => unreachable!(),
            },
            "subsumption answer is bit-identical to direct evaluation"
        );
        assert_eq!(engine.semantic_stats().subsumption_hits, 1);
    }

    #[test]
    fn per_shard_budget_failure_is_eager() {
        let g = Arc::new(rpq_graph::gen::synthetic(300, 1200, 2, 3, 3));
        let err = ShardedEngine::build(
            Arc::clone(&g),
            EngineConfig {
                shards: 3,
                shard_memory_budget: 1,
                ..EngineConfig::default()
            },
        );
        assert!(matches!(err, Err(EngineError::IndexOverBudget { .. })));
    }
}
