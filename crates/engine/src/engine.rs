//! The [`QueryEngine`]: one immutable graph, lazily-built shared indices,
//! and scoped-thread batch evaluation.

use crate::batch::{BatchItem, BatchResult, Query, QueryOutput};
use crate::error::ConfigError;
use crate::memo::ReachMemo;
use crate::planner::{self, Plan};
use rpq_core::canonical::{canonical_pq, canonical_rq};
use rpq_core::join_match::JoinMatch;
use rpq_core::pq::Pq;
use rpq_core::predicate::Predicate;
use rpq_core::reach::{CachedReach, ProbeReach};
use rpq_core::rq::{Rq, RqResult};
use rpq_core::split_match::SplitMatch;
use rpq_graph::{DistanceMatrix, Graph, NodeId};
use rpq_index::{HopConfig, HopLabels, ShardedConfig, ShardedLabels};
use rpq_regex::FRegex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Engine tuning knobs.
///
/// Construct via [`EngineConfig::default`] or the validating
/// [`EngineConfig::builder`]. The struct is `#[non_exhaustive]` so the
/// serving/config surface can grow fields without breaking callers —
/// which also means struct-literal construction is crate-private; outside
/// this crate go through the builder:
///
/// ```
/// use rpq_engine::EngineConfig;
/// let config = EngineConfig::builder()
///     .workers(4)
///     .matrix_node_limit(0)
///     .build()
///     .unwrap();
/// assert_eq!(config.workers, 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub struct EngineConfig {
    /// Worker threads per batch; `0` means one per available core.
    pub workers: usize,
    /// Build the per-color distance matrix lazily iff
    /// `|V| <= matrix_node_limit` (the matrix costs O(|Σ|·|V|²) memory —
    /// the default keeps it a few tens of megabytes).
    pub matrix_node_limit: usize,
    /// Capacity of each worker's LRU reachability cache, used by the
    /// cached PQ backend (`JoinMatch/cache`, `SplitMatch/cache`) on graphs
    /// too large for the matrix while no hop-label index is usable, and by
    /// the standing-query matchers of the live engine. Default `1 << 16`
    /// entries per worker (an entry is a memoized `(x, y, regex) → bool`
    /// pair answer, ~tens of bytes).
    pub reach_cache_capacity: usize,
    /// Byte budget for the pruned 2-hop label index built for graphs
    /// *above* the matrix node limit (`0` disables hop labels entirely).
    /// The build runs in the background off the first over-limit batch;
    /// until it lands, RQs fall back to search and PQs to the cached
    /// backend. If the budget is exceeded mid-build, the wildcard layer is
    /// dropped first and the concrete layers kept (queries probing only
    /// concrete colors stay indexed); if even those do not fit, the engine
    /// serves search/cached plans permanently.
    pub hop_label_budget: usize,
    /// Landmarks processed per hop-label layer; `0` (the default) means
    /// all nodes, which is what makes label probes exact. A nonzero value
    /// below `|V|` would yield upper-bound-only probes, so the engine
    /// treats it as "hop labels disabled" rather than serve inexact
    /// answers — it is a build-cost ceiling, not an approximation dial.
    pub hop_landmarks: usize,
    /// Normalized pattern size (`|Vp| + |Ep|` post-dummy-rewrite) at and
    /// above which a cyclic pattern on the matrix backend plans
    /// `SplitMatch`. Defaults to the measured
    /// [`SPLIT_CROSSOVER`](crate::planner::SPLIT_CROSSOVER); lifted into
    /// the config so deployments and benches can tune the crossover
    /// without patching source (`usize::MAX` disables split entirely).
    pub split_crossover: usize,
    /// Number of shards for the partitioned fallback backend; `< 2`
    /// disables sharding. With `shards ≥ 2`, a graph over the matrix
    /// limit whose single hop-label build **fails its budget** (or is
    /// disabled) gets a sharded index instead: k per-shard label builds —
    /// run in parallel, each under [`shard_memory_budget`](EngineConfig::shard_memory_budget)
    /// — plus boundary-overlay labels, serving `Plan::RqSharded` /
    /// `Plan::PqJoinSharded`. The single-index build stays preferred when
    /// it fits: its probes don't pay the overlay stitch.
    pub shards: usize,
    /// Byte budget for **each** per-shard label build of the sharded
    /// backend; `0` means unlimited (matching `HopConfig::budget_bytes`
    /// and `ShardedConfig::shard_budget_bytes` — but note
    /// [`hop_label_budget`](EngineConfig::hop_label_budget) is the odd
    /// one out: `0` there *disables* hop labels entirely). Memory-capped
    /// deployments set this explicitly — e.g. `hop_label_budget /
    /// shards`, the reading "the same memory, but no single build ever
    /// holds more than one shard's index".
    pub shard_memory_budget: usize,
    /// Slow-query threshold in microseconds; `0` (the default) disables
    /// the slow-query log. A query whose evaluation exceeds the threshold
    /// is counted on the process tracer (surfaced by the server as
    /// `rpq_slow_queries_total`) and — when the tracer is enabled —
    /// recorded into the trace ring with its text, chosen plan, and
    /// duration. With the threshold at 0 the hot path pays a single
    /// integer compare.
    pub slow_query_us: u64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: 0,
            matrix_node_limit: 2048,
            reach_cache_capacity: 1 << 16,
            hop_label_budget: 256 << 20,
            hop_landmarks: 0,
            split_crossover: planner::SPLIT_CROSSOVER,
            shards: 1,
            shard_memory_budget: 0,
            slow_query_us: 0,
        }
    }
}

impl EngineConfig {
    /// A validating builder seeded with the defaults. Setters mirror the
    /// field docs; [`EngineConfigBuilder::build`] rejects values the
    /// engine cannot serve with (`Err(ConfigError)`) instead of letting
    /// them panic deep inside a batch.
    pub fn builder() -> EngineConfigBuilder {
        EngineConfigBuilder {
            config: EngineConfig::default(),
        }
    }
}

/// Builder for [`EngineConfig`] — see [`EngineConfig::builder`].
#[derive(Debug, Clone)]
pub struct EngineConfigBuilder {
    config: EngineConfig,
}

impl EngineConfigBuilder {
    /// Sanity cap on [`workers`](EngineConfigBuilder::workers): the engine
    /// spawns this many scoped threads per batch, so a typo'd huge value
    /// is a config error, not a fork bomb.
    pub const MAX_WORKERS: usize = 4096;

    /// Worker threads per batch; `0` (default) means one per core.
    pub fn workers(mut self, workers: usize) -> Self {
        self.config.workers = workers;
        self
    }

    /// Largest node count that still gets the per-color distance matrix
    /// (`0` disables the matrix regime entirely).
    pub fn matrix_node_limit(mut self, limit: usize) -> Self {
        self.config.matrix_node_limit = limit;
        self
    }

    /// Per-worker LRU reachability-cache capacity (entries, must be ≥ 1).
    pub fn reach_cache_capacity(mut self, capacity: usize) -> Self {
        self.config.reach_cache_capacity = capacity;
        self
    }

    /// Byte budget for the pruned 2-hop label index (`0` disables hop
    /// labels).
    pub fn hop_label_budget(mut self, bytes: usize) -> Self {
        self.config.hop_label_budget = bytes;
        self
    }

    /// Landmarks per hop-label layer; `0` (default) = all nodes (exact).
    pub fn hop_landmarks(mut self, landmarks: usize) -> Self {
        self.config.hop_landmarks = landmarks;
        self
    }

    /// Normalized pattern size at which cyclic patterns switch to
    /// `SplitMatch` on the matrix backend (`usize::MAX` disables split;
    /// must be ≥ 1).
    pub fn split_crossover(mut self, crossover: usize) -> Self {
        self.config.split_crossover = crossover;
        self
    }

    /// Shard count for the partitioned fallback backend (`1` disables
    /// sharding; must be ≥ 1).
    pub fn shards(mut self, shards: usize) -> Self {
        self.config.shards = shards;
        self
    }

    /// Byte budget for **each** per-shard label build (`0` = unlimited).
    pub fn shard_memory_budget(mut self, bytes: usize) -> Self {
        self.config.shard_memory_budget = bytes;
        self
    }

    /// Slow-query threshold in microseconds (`0` = disabled, the default).
    pub fn slow_query_us(mut self, threshold_us: u64) -> Self {
        self.config.slow_query_us = threshold_us;
        self
    }

    /// Validate and produce the config.
    pub fn build(self) -> Result<EngineConfig, ConfigError> {
        let c = &self.config;
        if c.reach_cache_capacity == 0 {
            return Err(ConfigError::ZeroReachCache);
        }
        if c.shards == 0 {
            return Err(ConfigError::ZeroShards);
        }
        if c.split_crossover == 0 {
            return Err(ConfigError::ZeroSplitCrossover);
        }
        if c.workers > Self::MAX_WORKERS {
            return Err(ConfigError::TooManyWorkers {
                workers: c.workers,
                max: Self::MAX_WORKERS,
            });
        }
        Ok(self.config)
    }
}

/// A shared, immutable graph plus lazily-built indices, evaluating batches
/// of mixed [`Query::Rq`] / [`Query::Pq`] queries on scoped worker threads.
///
/// The engine is `Sync`: one instance can serve batches from many threads;
/// index construction happens at most once.
#[derive(Debug)]
pub struct QueryEngine {
    graph: Arc<Graph>,
    config: EngineConfig,
    matrix: OnceLock<DistanceMatrix>,
    /// `None` inside = the build failed (over budget) — permanent fallback.
    hop: Arc<OnceLock<Option<Arc<HopLabels>>>>,
    /// Builder-role claim: exactly one build (background or forced) runs
    /// at a time; a cancelled background build releases the claim.
    hop_started: Arc<AtomicBool>,
    /// Set by [`retire_index_builds`](QueryEngine::retire_index_builds)
    /// when this engine's graph version is superseded: an in-flight
    /// background label build checks it between landmarks and aborts.
    retired: Arc<AtomicBool>,
    /// The partitioned fallback index: built (in the background, or via
    /// [`force_sharded_labels`](QueryEngine::force_sharded_labels)) once
    /// the single hop-label build has failed its budget and
    /// `config.shards ≥ 2`. `None` inside = that build failed too.
    sharded: Arc<OnceLock<Option<Arc<ShardedLabels>>>>,
    sharded_started: Arc<AtomicBool>,
}

impl QueryEngine {
    /// Engine over `graph` with default configuration.
    pub fn new(graph: Arc<Graph>) -> Self {
        Self::with_config(graph, EngineConfig::default())
    }

    /// Engine over `graph` with explicit configuration.
    pub fn with_config(graph: Arc<Graph>, config: EngineConfig) -> Self {
        QueryEngine {
            graph,
            config,
            matrix: OnceLock::new(),
            hop: Arc::new(OnceLock::new()),
            hop_started: Arc::new(AtomicBool::new(false)),
            retired: Arc::new(AtomicBool::new(false)),
            sharded: Arc::new(OnceLock::new()),
            sharded_started: Arc::new(AtomicBool::new(false)),
        }
    }

    /// The shared graph.
    pub fn graph(&self) -> &Arc<Graph> {
        &self.graph
    }

    /// The active configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Would the planner see a distance matrix for this graph? True once
    /// built, or when the graph is small enough that the engine will build
    /// it on first use.
    pub fn matrix_available(&self) -> bool {
        self.matrix.get().is_some() || self.graph.node_count() <= self.config.matrix_node_limit
    }

    /// The distance matrix, building it first if the policy allows;
    /// `None` when the graph is over the node limit and no matrix exists.
    pub fn matrix(&self) -> Option<&DistanceMatrix> {
        if self.graph.node_count() <= self.config.matrix_node_limit {
            Some(
                self.matrix
                    .get_or_init(|| DistanceMatrix::build(&self.graph)),
            )
        } else {
            self.matrix.get()
        }
    }

    /// Build the matrix unconditionally (callers who know the footprint is
    /// acceptable can opt in above the node limit).
    pub fn force_matrix(&self) -> &DistanceMatrix {
        self.matrix
            .get_or_init(|| DistanceMatrix::build(&self.graph))
    }

    /// Does policy allow a hop-label index for this graph? (Over the
    /// matrix limit — under it the strictly faster matrix wins — with a
    /// nonzero budget and no exactness-breaking landmark cap.)
    fn hop_policy_allows(&self) -> bool {
        self.graph.node_count() > self.config.matrix_node_limit
            && self.config.hop_label_budget > 0
            && (self.config.hop_landmarks == 0
                || self.config.hop_landmarks >= self.graph.node_count())
    }

    fn hop_config(&self) -> HopConfig {
        HopConfig {
            landmarks: 0,
            budget_bytes: self.config.hop_label_budget,
            wildcard_layer: true,
        }
    }

    /// The hop-label index, if its build has completed and fit the budget.
    /// Never blocks.
    pub fn hop_labels(&self) -> Option<Arc<HopLabels>> {
        self.hop.get().and_then(|o| o.clone())
    }

    /// True once the hop-label index is built and usable for planning.
    pub fn hop_ready(&self) -> bool {
        self.hop.get().is_some_and(|o| o.is_some())
    }

    /// Build the hop-label index *now*, on the calling thread (benches and
    /// tests that need a deterministic `RqHop` plan; production traffic
    /// relies on the background build instead). If a background build is
    /// already in flight, waits for its result rather than building the
    /// same index twice. `None` when policy forbids the index or the build
    /// exceeded the budget.
    pub fn force_hop_labels(&self) -> Option<Arc<HopLabels>> {
        if !self.hop_policy_allows() {
            return self.hop_labels();
        }
        loop {
            if let Some(outcome) = self.hop.get() {
                return outcome.clone();
            }
            // claim the builder role; if someone else holds it, a build is
            // in flight — it will either fill the cell or (cancelled) give
            // the role back, so poll cheaply instead of duplicating work
            if !self.hop_started.swap(true, Ordering::AcqRel) {
                return self
                    .hop
                    .get_or_init(|| {
                        HopLabels::build_with(&self.graph, &self.hop_config(), None)
                            .ok()
                            .map(Arc::new)
                    })
                    .clone();
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
    }

    /// Kick off the background label build if policy allows and nobody has
    /// yet. Queries keep falling back to search plans until it lands.
    fn ensure_hop_build(&self) {
        if !self.hop_policy_allows()
            || self.retired.load(Ordering::Relaxed)
            || self.hop.get().is_some()
            || self.hop_started.swap(true, Ordering::AcqRel)
        {
            return;
        }
        let graph = Arc::clone(&self.graph);
        let cell = Arc::clone(&self.hop);
        let retired = Arc::clone(&self.retired);
        let started = Arc::clone(&self.hop_started);
        let config = self.hop_config();
        std::thread::spawn(move || {
            let t0 = Instant::now();
            match HopLabels::build_with(&graph, &config, Some(&retired)) {
                Ok(labels) => {
                    let detail = format!("ok bytes={}", labels.bytes());
                    rpq_trace::tracer().record_span("index", "hop-build", t0.elapsed(), &detail);
                    let _ = cell.set(Some(Arc::new(labels)));
                }
                // over budget: pin the failure — retrying cannot succeed
                Err(rpq_index::HopBuildError::OverBudget { .. }) => {
                    rpq_trace::tracer().record_span(
                        "index",
                        "hop-build",
                        t0.elapsed(),
                        "over-budget: search fallback pinned",
                    );
                    let _ = cell.set(None);
                }
                // cancelled (version superseded or engine dropped): hand
                // the builder role back so a deliberate force on a
                // still-live engine can still build
                Err(rpq_index::HopBuildError::Cancelled) => {
                    rpq_trace::tracer().record_span(
                        "index",
                        "hop-build",
                        t0.elapsed(),
                        "cancelled: version superseded",
                    );
                    started.store(false, Ordering::Release);
                }
                Err(rpq_index::HopBuildError::RepairTooBroad { .. }) => {
                    unreachable!("build_with never runs the repair path")
                }
            }
        });
    }

    /// Seed the hop cell with labels built (or repaired) elsewhere — the
    /// live-update layer's carry-forward path, mirroring
    /// [`adopt_sharded_labels`](QueryEngine::adopt_sharded_labels). No-op
    /// if a build already landed.
    pub(crate) fn adopt_hop_labels(&self, labels: Arc<HopLabels>) {
        self.hop_started.store(true, Ordering::Release);
        let _ = self.hop.set(Some(labels));
    }

    /// Mark this engine's graph version as superseded: any in-flight
    /// background index build aborts at its next checkpoint instead of
    /// finishing work nobody will read. Called by the live-update layer
    /// when a newer snapshot is published; queries against this engine
    /// stay correct (they simply keep their search fallback).
    pub fn retire_index_builds(&self) {
        self.retired.store(true, Ordering::Relaxed);
    }

    /// Is the hop index usable for this regex — built, and covering every
    /// color the regex probes (the wildcard layer may have been dropped on
    /// budget)?
    fn hop_usable_for(&self, regex: &FRegex) -> bool {
        match self.hop.get() {
            Some(Some(labels)) => regex.atoms().iter().all(|a| labels.has_layer(a.color)),
            _ => false,
        }
    }

    /// Is the hop index usable for this whole pattern — built, and
    /// covering every color probed by every edge regex?
    pub(crate) fn hop_usable_for_pq(&self, pq: &Pq) -> bool {
        match self.hop.get() {
            Some(Some(labels)) => pq
                .edges()
                .iter()
                .flat_map(|e| e.regex.atoms())
                .all(|a| labels.has_layer(a.color)),
            _ => false,
        }
    }

    /// Does policy allow the **sharded** fallback index? Only when a
    /// single-machine index cannot serve: over the matrix limit, sharding
    /// configured, and the single hop-label build either disabled by
    /// policy or already failed its budget. While a single-index build is
    /// still possible (or in flight), it stays preferred — its probes
    /// don't pay the overlay stitch.
    fn sharded_policy_allows(&self) -> bool {
        self.graph.node_count() > self.config.matrix_node_limit
            && self.config.shards >= 2
            && (!self.hop_policy_allows() || matches!(self.hop.get(), Some(None)))
    }

    fn sharded_config(&self) -> ShardedConfig {
        ShardedConfig {
            shards: self.config.shards,
            shard_budget_bytes: self.config.shard_memory_budget,
            wildcard_layer: true,
            build_workers: 0,
        }
    }

    /// The sharded index, if its build has completed within the per-shard
    /// budgets. Never blocks.
    pub fn sharded_labels(&self) -> Option<Arc<ShardedLabels>> {
        self.sharded.get().and_then(|o| o.clone())
    }

    /// True once the sharded index is built and usable for planning.
    pub fn sharded_ready(&self) -> bool {
        self.sharded.get().is_some_and(|o| o.is_some())
    }

    /// Build the sharded index *now*, on the calling thread (benches and
    /// tests that need deterministic `RqSharded`/`PqJoinSharded` plans;
    /// production traffic relies on the background build). `None` when
    /// policy forbids it or a per-shard build exceeded its budget.
    pub fn force_sharded_labels(&self) -> Option<Arc<ShardedLabels>> {
        if !self.sharded_policy_allows() {
            return self.sharded_labels();
        }
        loop {
            if let Some(outcome) = self.sharded.get() {
                return outcome.clone();
            }
            if !self.sharded_started.swap(true, Ordering::AcqRel) {
                return self
                    .sharded
                    .get_or_init(|| {
                        ShardedLabels::build_with(&self.graph, &self.sharded_config(), None)
                            .ok()
                            .map(Arc::new)
                    })
                    .clone();
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
    }

    /// Seed the sharded cell with an index built elsewhere (the
    /// [`ShardedEngine`](crate::ShardedEngine) constructor, which owns
    /// the build so it can surface build errors and stats). No-op if a
    /// build already landed.
    pub(crate) fn adopt_sharded_labels(&self, labels: Arc<ShardedLabels>) {
        self.sharded_started.store(true, Ordering::Release);
        let _ = self.sharded.set(Some(labels));
    }

    /// Kick off the background sharded build if the single-index path is
    /// out (disabled or over budget) and nobody has yet.
    fn ensure_sharded_build(&self) {
        if !self.sharded_policy_allows()
            || self.retired.load(Ordering::Relaxed)
            || self.sharded.get().is_some()
            || self.sharded_started.swap(true, Ordering::AcqRel)
        {
            return;
        }
        let graph = Arc::clone(&self.graph);
        let cell = Arc::clone(&self.sharded);
        let retired = Arc::clone(&self.retired);
        let started = Arc::clone(&self.sharded_started);
        let config = self.sharded_config();
        std::thread::spawn(move || {
            let t0 = Instant::now();
            match ShardedLabels::build_with(&graph, &config, Some(&retired)) {
                Ok(labels) => {
                    let stats = labels.stats();
                    let detail =
                        format!("ok shards={} bytes={}", stats.shards, stats.total_bytes());
                    rpq_trace::tracer().record_span(
                        "index",
                        "sharded-build",
                        t0.elapsed(),
                        &detail,
                    );
                    let _ = cell.set(Some(Arc::new(labels)));
                }
                // over a per-shard budget: pin the failure — retrying the
                // same partition under the same budget cannot succeed
                Err(rpq_index::HopBuildError::OverBudget { .. }) => {
                    rpq_trace::tracer().record_span(
                        "index",
                        "sharded-build",
                        t0.elapsed(),
                        "over-budget: search fallback pinned",
                    );
                    let _ = cell.set(None);
                }
                // cancelled (version superseded): hand the role back
                Err(rpq_index::HopBuildError::Cancelled) => {
                    rpq_trace::tracer().record_span(
                        "index",
                        "sharded-build",
                        t0.elapsed(),
                        "cancelled: version superseded",
                    );
                    started.store(false, Ordering::Release);
                }
                Err(rpq_index::HopBuildError::RepairTooBroad { .. }) => {
                    unreachable!("build_with never runs the repair path")
                }
            }
        });
    }

    /// Is the sharded index usable for this regex — built, and covering
    /// every color it probes?
    fn sharded_usable_for(&self, regex: &FRegex) -> bool {
        match self.sharded.get() {
            Some(Some(labels)) => regex.atoms().iter().all(|a| labels.has_layer(a.color)),
            _ => false,
        }
    }

    /// Is the sharded index usable for this whole pattern?
    pub(crate) fn sharded_usable_for_pq(&self, pq: &Pq) -> bool {
        match self.sharded.get() {
            Some(Some(labels)) => pq
                .edges()
                .iter()
                .flat_map(|e| e.regex.atoms())
                .all(|a| labels.has_layer(a.color)),
            _ => false,
        }
    }

    /// The plan the engine would pick for `query` outside any batch.
    pub fn plan_query(&self, query: &Query) -> Plan {
        match query {
            Query::Rq(rq) => planner::plan_rq(
                &rq.regex,
                self.matrix_available(),
                self.hop_usable_for(&rq.regex),
                self.sharded_usable_for(&rq.regex),
                false,
            ),
            Query::Pq(pq) => planner::plan_pq(
                pq,
                self.matrix_available(),
                self.hop_usable_for_pq(pq),
                self.sharded_usable_for_pq(pq),
                self.config.split_crossover,
            ),
        }
    }

    /// Evaluate one query (a batch of one, on the calling thread).
    pub fn run_query(&self, query: &Query) -> QueryOutput {
        self.run_query_with_memo(query, &ReachMemo::new())
    }

    /// Evaluate one query against a caller-provided reach-set memo (the
    /// snapshot layer passes a snapshot-lifetime memo so repeated keys are
    /// shared across batches, not just within one).
    pub fn run_query_with_memo(&self, query: &Query, memo: &ReachMemo) -> QueryOutput {
        let canon = canonical_query(query);
        let query = &canon;
        if !self.matrix_available() {
            self.ensure_hop_build();
            // no-op unless the single-index path is disabled or has
            // already failed its budget — the sharded fallback regime
            self.ensure_sharded_build();
        }
        let plan = self.plan_query(query);
        if plan_needs_matrix(plan) {
            self.matrix();
        }
        let mut cached = CachedReach::new(self.config.reach_cache_capacity);
        // a single query owns the whole worker budget for its refinement
        let t = Instant::now();
        let out = self.eval_one(query, plan, memo, &mut cached, self.configured_workers());
        self.note_if_slow(query, plan, t.elapsed());
        out
    }

    /// Evaluate a batch: plan each query (batch-aware), then pull queries
    /// off a shared counter from `workers` scoped threads. Outputs come
    /// back in submission order and are identical to sequential
    /// single-query evaluation — the strategies differ only in cost.
    pub fn run_batch(&self, queries: &[Query]) -> BatchResult {
        self.run_batch_with_memo(queries, &ReachMemo::new())
    }

    /// [`run_batch`](QueryEngine::run_batch) against a caller-provided
    /// memo, so reach sets survive across batches for as long as the memo
    /// does (one graph version, in snapshot-based serving). The reported
    /// memo stats are this batch's delta; under concurrent batches sharing
    /// one memo they are approximate.
    pub fn run_batch_with_memo(&self, queries: &[Query], memo: &ReachMemo) -> BatchResult {
        let t0 = Instant::now();
        let (hits0, misses0) = memo.stats();
        if queries.is_empty() {
            return BatchResult::new(Vec::new(), t0.elapsed(), 0, (0, 0));
        }

        // minimize-before-plan: every query is rewritten into its
        // run-normal canonical form (shape- and answer-preserving), so
        // syntactic variants of one language share a memo key, a plan,
        // and — below — one reach-set computation
        let queries: Vec<Query> = queries.iter().map(canonical_query).collect();
        let queries = queries.as_slice();

        // batch-shape analysis: RQ keys that repeat share one reach set
        let mut key_count: HashMap<_, u32> = HashMap::new();
        for q in queries {
            if let Query::Rq(rq) = q {
                *key_count.entry((&rq.from, &rq.regex)).or_insert(0) += 1;
            }
        }
        let matrix_available = self.matrix_available();
        if !matrix_available {
            // over the matrix limit: start the background label build off
            // this batch; *this* batch still plans against whatever is
            // ready right now (fallback-while-stale). The sharded build
            // only kicks once the single-index path is disabled or has
            // failed its budget.
            self.ensure_hop_build();
            self.ensure_sharded_build();
        }
        let plans: Vec<Plan> = queries
            .iter()
            .map(|q| match q {
                Query::Rq(rq) => {
                    let shared = key_count[&(&rq.from, &rq.regex)] > 1;
                    planner::plan_rq(
                        &rq.regex,
                        matrix_available,
                        self.hop_usable_for(&rq.regex),
                        self.sharded_usable_for(&rq.regex),
                        shared,
                    )
                }
                Query::Pq(pq) => planner::plan_pq(
                    pq,
                    matrix_available,
                    self.hop_usable_for_pq(pq),
                    self.sharded_usable_for_pq(pq),
                    self.config.split_crossover,
                ),
            })
            .collect();

        // build the shared index once, before workers start
        if plans.iter().any(|&p| plan_needs_matrix(p)) {
            self.matrix();
        }

        let workers = self.worker_count(queries.len());
        // worker budget left over by a short batch goes to PQ refinement:
        // each index-backed PQ evaluation chunks its per-edge source tests
        // over this many threads, so one big PQ in a batch of one still
        // saturates the machine
        let pq_workers = (self.configured_workers() / workers).max(1);
        let next = AtomicUsize::new(0);
        let slots: Vec<OnceLock<(QueryOutput, std::time::Duration)>> =
            (0..queries.len()).map(|_| OnceLock::new()).collect();

        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| {
                    let mut cached = CachedReach::new(self.config.reach_cache_capacity);
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= queries.len() {
                            break;
                        }
                        let t = Instant::now();
                        let out =
                            self.eval_one(&queries[i], plans[i], memo, &mut cached, pq_workers);
                        let elapsed = t.elapsed();
                        self.note_if_slow(&queries[i], plans[i], elapsed);
                        slots[i]
                            .set((out, elapsed))
                            .unwrap_or_else(|_| unreachable!("each index is claimed once"));
                    }
                });
            }
        });

        let items = slots
            .into_iter()
            .zip(&plans)
            .map(|(slot, &plan)| {
                let (output, time) = slot.into_inner().expect("worker filled every slot");
                BatchItem {
                    output,
                    plan,
                    time,
                    profile: None,
                }
            })
            .collect();
        let (hits1, misses1) = memo.stats();
        BatchResult::new(
            items,
            t0.elapsed(),
            workers,
            (hits1 - hits0, misses1 - misses0),
        )
    }

    /// The configured worker budget (`0` = one per available core).
    fn configured_workers(&self) -> usize {
        let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
        if self.config.workers == 0 {
            hw
        } else {
            self.config.workers
        }
    }

    fn worker_count(&self, batch_len: usize) -> usize {
        self.configured_workers().clamp(1, batch_len.max(1))
    }

    fn eval_one(
        &self,
        query: &Query,
        plan: Plan,
        memo: &ReachMemo,
        cached: &mut CachedReach,
        pq_workers: usize,
    ) -> QueryOutput {
        let g = self.graph.as_ref();
        match (query, plan) {
            (Query::Rq(rq), Plan::RqDm) => {
                if let Some(hits) = self.memo_served(g, rq, memo) {
                    return QueryOutput::Rq(RqResult::from_pairs(hits));
                }
                let m = self.matrix.get().expect("DM plan requires the matrix");
                QueryOutput::Rq(Self::rq_indexed(g, rq, m, memo))
            }
            (Query::Rq(rq), Plan::RqHop) => {
                if let Some(hits) = self.memo_served(g, rq, memo) {
                    return QueryOutput::Rq(RqResult::from_pairs(hits));
                }
                let labels = self.hop_labels().expect("hop plan requires built labels");
                QueryOutput::Rq(Self::rq_indexed(g, rq, labels.as_ref(), memo))
            }
            (Query::Rq(rq), Plan::RqSharded) => {
                if let Some(hits) = self.memo_served(g, rq, memo) {
                    return QueryOutput::Rq(RqResult::from_pairs(hits));
                }
                let labels = self
                    .sharded_labels()
                    .expect("sharded plan requires built labels");
                QueryOutput::Rq(Self::rq_indexed(g, rq, labels.as_ref(), memo))
            }
            (Query::Rq(rq), Plan::RqBiBfs) => {
                if let Some(hits) = self.memo_served(g, rq, memo) {
                    return QueryOutput::Rq(RqResult::from_pairs(hits));
                }
                QueryOutput::Rq(rq.eval_bibfs(g))
            }
            (Query::Rq(rq), Plan::RqBfsMemo) => {
                let pairs = memo.reach_pairs(g, &rq.from, &rq.regex);
                let hits = pairs
                    .iter()
                    .filter(|&&(_, y)| rq.to.matches(g.attrs(y)))
                    .copied()
                    .collect();
                QueryOutput::Rq(RqResult::from_pairs(hits))
            }
            (Query::Pq(pq), Plan::PqJoinMatrix) => {
                let m = self.matrix.get().expect("DM plan requires the matrix");
                let mut reach = ProbeReach::with_workers(m, pq_workers);
                QueryOutput::Pq(Arc::new(JoinMatch::eval(pq, g, &mut reach)))
            }
            (Query::Pq(pq), Plan::PqSplitMatrix) => {
                let m = self.matrix.get().expect("DM plan requires the matrix");
                let mut reach = ProbeReach::with_workers(m, pq_workers);
                QueryOutput::Pq(Arc::new(SplitMatch::eval(pq, g, &mut reach)))
            }
            (Query::Pq(pq), Plan::PqJoinHop) => {
                let labels = self.hop_labels().expect("hop plan requires built labels");
                let mut reach = ProbeReach::with_workers(labels.as_ref(), pq_workers);
                QueryOutput::Pq(Arc::new(JoinMatch::eval(pq, g, &mut reach)))
            }
            (Query::Pq(pq), Plan::PqSplitHop) => {
                let labels = self.hop_labels().expect("hop plan requires built labels");
                let mut reach = ProbeReach::with_workers(labels.as_ref(), pq_workers);
                QueryOutput::Pq(Arc::new(SplitMatch::eval(pq, g, &mut reach)))
            }
            (Query::Pq(pq), Plan::PqJoinSharded) => {
                let labels = self
                    .sharded_labels()
                    .expect("sharded plan requires built labels");
                let mut reach = ProbeReach::with_workers(labels.as_ref(), pq_workers);
                QueryOutput::Pq(Arc::new(JoinMatch::eval(pq, g, &mut reach)))
            }
            (Query::Pq(pq), Plan::PqSplitSharded) => {
                let labels = self
                    .sharded_labels()
                    .expect("sharded plan requires built labels");
                let mut reach = ProbeReach::with_workers(labels.as_ref(), pq_workers);
                QueryOutput::Pq(Arc::new(SplitMatch::eval(pq, g, &mut reach)))
            }
            (Query::Pq(pq), Plan::PqJoinCached) => {
                QueryOutput::Pq(Arc::new(JoinMatch::eval(pq, g, cached)))
            }
            (Query::Pq(pq), Plan::PqSplitCached) => {
                QueryOutput::Pq(Arc::new(SplitMatch::eval(pq, g, cached)))
            }
            (Query::Rq(_), _) | (Query::Pq(_), _) => {
                unreachable!("planner assigned a {plan:?} plan to a mismatched query kind")
            }
        }
    }

    /// Semantic-cache probe for index-backed and search RQ plans: a
    /// completed exact cell or a containing cached entry answers —
    /// filtered down by the query's target predicate — without touching
    /// the index; a cold cache costs one lookup and falls through to the
    /// plan's own backend ([`SemanticMemo::try_answer`](crate::memo::SemanticMemo::try_answer)
    /// never blocks on in-flight computations).
    fn memo_served(&self, g: &Graph, rq: &Rq, memo: &ReachMemo) -> Option<Vec<(NodeId, NodeId)>> {
        let (pairs, _kind) = memo.try_answer(g, &rq.from, &rq.regex)?;
        Some(
            pairs
                .iter()
                .filter(|&&(_, y)| rq.to.matches(g.attrs(y)))
                .copied()
                .collect(),
        )
    }

    /// Index-backed RQ evaluation after a declined cache probe. Against
    /// a [`persistent`](crate::memo::SemanticMemo::persistent) memo (the
    /// sharded engine's, a snapshot's) the key's *full* reach set is
    /// computed through the index — target predicate widened to `true`,
    /// trading the backward-pruning pass for a reusable cache entry —
    /// installed via [`insert`](crate::memo::SemanticMemo::insert), and
    /// filtered down to the query's targets; the next exact or contained
    /// query on the key is a cache hit. Throwaway per-call memos skip
    /// the wider evaluation and run the query directly.
    fn rq_indexed<D: rpq_index::DistProbe + ?Sized>(
        g: &Graph,
        rq: &Rq,
        probe: &D,
        memo: &ReachMemo,
    ) -> RqResult {
        if !memo.populates_on_miss() {
            return rq.eval_with_dist(g, probe);
        }
        let wide = Rq::new(rq.from.clone(), Predicate::always_true(), rq.regex.clone());
        let pairs = memo.insert(&rq.from, &rq.regex, wide.eval_with_dist(g, probe).pairs());
        RqResult::from_pairs(
            pairs
                .iter()
                .filter(|&&(_, y)| rq.to.matches(g.attrs(y)))
                .copied()
                .collect(),
        )
    }

    /// Slow-query log hook: with a nonzero
    /// [`slow_query_us`](EngineConfig::slow_query_us) threshold, a query
    /// over it is counted on the process [`rpq_trace::tracer`] and — when
    /// the tracer is enabled — recorded into the trace ring with its
    /// text, plan, and duration. Costs one integer compare when the
    /// threshold is 0.
    #[inline]
    fn note_if_slow(&self, query: &Query, plan: Plan, dur: std::time::Duration) {
        let threshold = self.config.slow_query_us;
        if threshold == 0 || (dur.as_micros() as u64) < threshold {
            return;
        }
        let t = rpq_trace::tracer();
        t.note_slow_query();
        if t.enabled() {
            t.record_span(
                "slow",
                plan.name(),
                dur,
                &format!(
                    "threshold_us={threshold} {}",
                    crate::explain::query_summary(query, &self.graph)
                ),
            );
        }
    }

    /// The plan for `query` plus the planner's rationale: which signal
    /// won and the values it saw (index availability, pattern shape,
    /// crossover) at decision time.
    pub fn plan_query_explain(&self, query: &Query) -> (Plan, String) {
        match query {
            Query::Rq(rq) => planner::plan_rq_explain(
                &rq.regex,
                self.matrix_available(),
                self.hop_usable_for(&rq.regex),
                self.sharded_usable_for(&rq.regex),
                false,
            ),
            Query::Pq(pq) => planner::plan_pq_explain(
                pq,
                self.matrix_available(),
                self.hop_usable_for_pq(pq),
                self.sharded_usable_for_pq(pq),
                self.config.split_crossover,
            ),
        }
    }

    /// Evaluate one query and return its execution profile alongside the
    /// output: chosen plan + rationale, contiguous stage timings (their
    /// sum equals the profile's wall time by construction), probe
    /// counts, memo hit/miss, shard fan-out, and worker utilization.
    /// This is the `explain` surface; the unprofiled
    /// [`run_query`](QueryEngine::run_query) path pays nothing for it.
    pub fn run_query_profiled(&self, query: &Query) -> (QueryOutput, rpq_trace::QueryProfile) {
        self.run_query_profiled_with_memo(query, &ReachMemo::new())
    }

    /// [`run_query_profiled`](QueryEngine::run_query_profiled) against a
    /// caller-provided memo (the snapshot layer passes its
    /// snapshot-lifetime memo so the profile's hit/miss numbers reflect
    /// real serving behavior, not a cold per-call memo).
    pub fn run_query_profiled_with_memo(
        &self,
        query: &Query,
        memo: &ReachMemo,
    ) -> (QueryOutput, rpq_trace::QueryProfile) {
        let t0 = Instant::now();
        if !self.matrix_available() {
            self.ensure_hop_build();
            self.ensure_sharded_build();
        }
        let (plan, rationale) = self.plan_query_explain(query);
        self.profiled_run(query, plan, rationale, memo, t0)
    }

    /// Profiled evaluation under a **caller-chosen** plan, bypassing the
    /// planner — the test/bench surface that lets parity suites drive
    /// every servable [`Plan`] variant (like
    /// [`force_hop_labels`](QueryEngine::force_hop_labels), this is for
    /// deterministic harnesses, not production traffic).
    ///
    /// # Panics
    ///
    /// Panics if `plan` does not match the query kind, requires an index
    /// that is not built (force the build first), or is
    /// [`Plan::PqStanding`] — standing answers are served by the snapshot
    /// layer (`Snapshot::run_query_profiled`), not the engine.
    pub fn run_query_with_plan_profiled(
        &self,
        query: &Query,
        plan: Plan,
    ) -> (QueryOutput, rpq_trace::QueryProfile) {
        let memo = ReachMemo::new();
        let t0 = Instant::now();
        let rationale = format!("plan {} forced by caller (test/bench surface)", plan.name());
        self.profiled_run(query, plan, rationale, &memo, t0)
    }

    /// Shared profiled-evaluation core. Stages are contiguous
    /// sub-intervals of one clock (`t0 → t1 → t2 → t3`), so their sum
    /// equals the reported wall time exactly.
    fn profiled_run(
        &self,
        query: &Query,
        plan: Plan,
        rationale: String,
        memo: &ReachMemo,
        t0: Instant,
    ) -> (QueryOutput, rpq_trace::QueryProfile) {
        let mut profile = rpq_trace::QueryProfile::new(
            crate::explain::query_summary(query, &self.graph),
            plan.name().to_owned(),
            rationale,
        );
        // minimize-before-plan, reported: evaluate the canonical form and
        // surface it in the profile when it differs from the submission
        let canon = canonical_query(query);
        if canon != *query {
            profile.canonical = crate::explain::query_summary(&canon, &self.graph);
        }
        let query = &canon;
        let t1 = Instant::now();
        profile.stage(
            "plan",
            t1 - t0,
            format!(
                "matrix_available={} hop_ready={} sharded_ready={}",
                self.matrix_available(),
                self.hop_ready(),
                self.sharded_ready()
            ),
        );

        let matrix_needed = plan_needs_matrix(plan);
        if matrix_needed {
            self.matrix();
        }
        let t2 = Instant::now();
        profile.stage(
            "prepare",
            t2 - t1,
            if matrix_needed {
                "distance matrix ready".to_owned()
            } else {
                "no shared index to prepare".to_owned()
            },
        );

        let s0 = memo.semantic_stats();
        let (hits0, misses0) = memo.stats();
        let workers = self.configured_workers();
        let mut cached = CachedReach::new(self.config.reach_cache_capacity);
        let (out, probes) = self.eval_one_profiled(query, plan, memo, &mut cached, workers);
        let t3 = Instant::now();
        let (hits1, misses1) = memo.stats();
        let s1 = memo.semantic_stats();
        profile.stage("eval", t3 - t2, format!("probes={probes}"));
        profile.probes = probes;
        profile.memo_hits = hits1 - hits0;
        profile.memo_misses = misses1 - misses0;
        // one query ran: at most one semantic-cache event moved (under
        // concurrent batches sharing the memo this is approximate, like
        // the hit/miss deltas above)
        profile.semcache = if s1.exact_hits > s0.exact_hits {
            "exact_hit"
        } else if s1.subsumption_hits > s0.subsumption_hits {
            "subsumption_hit"
        } else if s1.misses > s0.misses {
            "miss"
        } else {
            // the plan never consulted the cache (PQ backends)
            ""
        }
        .to_owned();
        profile.workers = workers;
        profile.shard_fanout = match plan {
            Plan::RqSharded | Plan::PqJoinSharded | Plan::PqSplitSharded => self
                .sharded_labels()
                .map_or(0, |l| l.sharded_graph().k() as u32),
            _ => 0,
        };
        profile.matches = out.match_count() as u64;
        profile.wall = t3 - t0;
        self.note_if_slow(query, plan, t3 - t2);

        let tracer = rpq_trace::tracer();
        if tracer.enabled() {
            tracer.record_span(
                "engine",
                "explain",
                profile.wall,
                &format!(
                    "plan={} probes={probes} matches={}",
                    plan.name(),
                    profile.matches
                ),
            );
        }
        (out, profile)
    }

    /// [`eval_one`](QueryEngine::eval_one) with probe counting: index
    /// backends are wrapped in a counting decorator that still delegates
    /// to their optimized bulk implementations. Returns the output and
    /// the number of distance probes issued (0 for plans that do not
    /// probe an index — pure searches and the cached backend).
    fn eval_one_profiled(
        &self,
        query: &Query,
        plan: Plan,
        memo: &ReachMemo,
        cached: &mut CachedReach,
        pq_workers: usize,
    ) -> (QueryOutput, u64) {
        use crate::explain::CountingProbe;
        let g = self.graph.as_ref();
        // index-backed RQ plans consult the semantic cache first, exactly
        // like the unprofiled path — a served answer reports 0 probes
        if let (Query::Rq(rq), Plan::RqDm | Plan::RqHop | Plan::RqSharded) = (query, plan) {
            if let Some(hits) = self.memo_served(g, rq, memo) {
                return (QueryOutput::Rq(RqResult::from_pairs(hits)), 0);
            }
        }
        match (query, plan) {
            (Query::Rq(rq), Plan::RqDm) => {
                let m = self.matrix.get().expect("DM plan requires the matrix");
                let p = CountingProbe::new(m);
                let out = QueryOutput::Rq(Self::rq_indexed(g, rq, &p, memo));
                (out, p.probes())
            }
            (Query::Rq(rq), Plan::RqHop) => {
                let labels = self.hop_labels().expect("hop plan requires built labels");
                let p = CountingProbe::new(labels.as_ref());
                let out = QueryOutput::Rq(Self::rq_indexed(g, rq, &p, memo));
                (out, p.probes())
            }
            (Query::Rq(rq), Plan::RqSharded) => {
                let labels = self
                    .sharded_labels()
                    .expect("sharded plan requires built labels");
                let p = CountingProbe::new(labels.as_ref());
                let out = QueryOutput::Rq(Self::rq_indexed(g, rq, &p, memo));
                (out, p.probes())
            }
            (Query::Pq(pq), Plan::PqJoinMatrix | Plan::PqSplitMatrix) => {
                let m = self.matrix.get().expect("DM plan requires the matrix");
                let p = CountingProbe::new(m);
                let out = Self::eval_pq_probed(pq, g, &p, plan, pq_workers);
                (out, p.probes())
            }
            (Query::Pq(pq), Plan::PqJoinHop | Plan::PqSplitHop) => {
                let labels = self.hop_labels().expect("hop plan requires built labels");
                let p = CountingProbe::new(labels.as_ref());
                let out = Self::eval_pq_probed(pq, g, &p, plan, pq_workers);
                (out, p.probes())
            }
            (Query::Pq(pq), Plan::PqJoinSharded | Plan::PqSplitSharded) => {
                let labels = self
                    .sharded_labels()
                    .expect("sharded plan requires built labels");
                let p = CountingProbe::new(labels.as_ref());
                let out = Self::eval_pq_probed(pq, g, &p, plan, pq_workers);
                (out, p.probes())
            }
            // the remaining plans never touch a DistProbe backend: run
            // them through the unprofiled path and report 0 probes
            _ => (self.eval_one(query, plan, memo, cached, pq_workers), 0),
        }
    }

    /// PQ evaluation over a counting probe, split/join chosen by plan.
    fn eval_pq_probed<P: rpq_index::DistProbe + Sync + ?Sized>(
        pq: &Pq,
        g: &Graph,
        probe: &P,
        plan: Plan,
        pq_workers: usize,
    ) -> QueryOutput {
        let mut reach = ProbeReach::with_workers(probe, pq_workers);
        let result = match plan {
            Plan::PqSplitMatrix | Plan::PqSplitHop | Plan::PqSplitSharded => {
                SplitMatch::eval(pq, g, &mut reach)
            }
            _ => JoinMatch::eval(pq, g, &mut reach),
        };
        QueryOutput::Pq(Arc::new(result))
    }
}

impl Drop for QueryEngine {
    /// An engine being dropped can never serve the index its background
    /// thread is building — cancel it instead of letting it run seconds of
    /// CPU and keep the graph alive for a result nobody can read. (The
    /// live-update layer additionally retires superseded engines eagerly,
    /// while readers may still pin them.)
    fn drop(&mut self) {
        self.retired.store(true, Ordering::Relaxed);
    }
}

fn plan_needs_matrix(plan: Plan) -> bool {
    matches!(plan, Plan::RqDm | Plan::PqJoinMatrix | Plan::PqSplitMatrix)
}

/// The query with every regex in run-normal canonical form
/// ([`rpq_core::canonical`]) — shape- and answer-preserving, so outputs
/// are bit-identical to evaluating the submitted spelling, but every
/// syntactic variant of one language keys the same memo cell and plan.
fn canonical_query(query: &Query) -> Query {
    match query {
        Query::Rq(rq) => Query::Rq(canonical_rq(rq)),
        Query::Pq(pq) => Query::Pq(canonical_pq(pq)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpq_core::pq::Pq;
    use rpq_core::predicate::Predicate;
    use rpq_core::rq::Rq;
    use rpq_graph::gen::essembly;
    use rpq_regex::FRegex;

    fn rq(g: &Graph, from: &str, to: &str, re: &str) -> Rq {
        Rq::new(
            Predicate::parse(from, g.schema()).unwrap(),
            Predicate::parse(to, g.schema()).unwrap(),
            FRegex::parse(re, g.alphabet()).unwrap(),
        )
    }

    #[test]
    fn batch_equals_sequential_on_essembly() {
        let g = Arc::new(essembly());
        let engine = QueryEngine::with_config(
            Arc::clone(&g),
            EngineConfig {
                workers: 3,
                ..EngineConfig::default()
            },
        );
        let q1 = rq(
            &g,
            "job = \"biologist\" && sp = \"cloning\"",
            "job = \"doctor\"",
            "fa^2 fn",
        );
        let mut pq = Pq::new();
        let a = pq.add_node(
            "a",
            Predicate::parse("job = \"doctor\"", g.schema()).unwrap(),
        );
        let b = pq.add_node("b", Predicate::always_true());
        pq.add_edge(a, b, FRegex::parse("fn+", g.alphabet()).unwrap());

        let queries: Vec<Query> = vec![
            Query::Rq(q1.clone()),
            Query::Pq(pq.clone()),
            Query::Rq(q1.clone()),
            Query::Rq(rq(&g, "job = \"physician\"", "job = \"doctor\"", "sn+")),
        ];
        let batch = engine.run_batch(&queries);
        assert_eq!(batch.len(), 4);
        assert_eq!(batch.workers(), 3);

        let m = DistanceMatrix::build(&g);
        assert_eq!(
            batch.items()[0].output.as_rq().unwrap(),
            &q1.eval_with_matrix(&g, &m)
        );
        assert_eq!(
            batch.items()[1].output.as_pq().unwrap(),
            &JoinMatch::eval(&pq, &g, &mut ProbeReach::new(&m))
        );
        assert_eq!(batch.items()[0].output, batch.items()[2].output);
        assert!(batch.items()[3].output.as_rq().unwrap().is_empty());
        assert!(batch.total_query_time() >= batch.items()[0].time);
    }

    #[test]
    fn small_graph_builds_matrix_lazily() {
        let g = Arc::new(essembly());
        let engine = QueryEngine::new(Arc::clone(&g));
        assert!(engine.matrix_available());
        assert!(engine.matrix.get().is_none(), "matrix must be lazy");
        let q = Query::Rq(rq(&g, "job = \"doctor\"", "job = \"doctor\"", "fa"));
        assert_eq!(engine.plan_query(&q), Plan::RqDm);
        engine.run_query(&q);
        assert!(
            engine.matrix.get().is_some(),
            "DM plan should have built it"
        );
    }

    #[test]
    fn over_limit_graph_avoids_matrix() {
        let g = Arc::new(essembly());
        let engine = QueryEngine::with_config(
            Arc::clone(&g),
            EngineConfig {
                matrix_node_limit: 0,
                workers: 2,
                // keep plans deterministic: no background label build racing
                // the batch's planning pass
                hop_label_budget: 0,
                ..EngineConfig::default()
            },
        );
        assert!(!engine.matrix_available());
        let shared = rq(&g, "job = \"biologist\"", "job = \"doctor\"", "fa^2 fn");
        let solo = rq(&g, "job = \"doctor\"", "job = \"biologist\"", "fa fn");
        let batch = engine.run_batch(&[
            Query::Rq(shared.clone()),
            Query::Rq(shared.clone()),
            Query::Rq(solo.clone()),
        ]);
        assert!(engine.matrix.get().is_none());
        assert_eq!(batch.items()[0].plan, Plan::RqBfsMemo);
        assert_eq!(batch.items()[1].plan, Plan::RqBfsMemo);
        assert_eq!(batch.items()[2].plan, Plan::RqBiBfs);
        // outputs still equal the reference strategies
        assert_eq!(
            batch.items()[0].output.as_rq().unwrap(),
            &shared.eval_bfs(&g)
        );
        assert_eq!(batch.items()[2].output.as_rq().unwrap(), &solo.eval_bfs(&g));
        let (hits, misses) = batch.memo_stats();
        assert_eq!(misses, 1, "shared key computed once");
        assert_eq!(hits, 1, "second probe reused it");
    }

    #[test]
    fn empty_batch() {
        let engine = QueryEngine::new(Arc::new(essembly()));
        let batch = engine.run_batch(&[]);
        assert!(batch.is_empty());
        assert_eq!(batch.workers(), 0);
    }

    #[test]
    fn hop_labels_serve_over_limit_rqs() {
        let g = Arc::new(rpq_graph::gen::synthetic(600, 2400, 2, 3, 21));
        let engine = QueryEngine::with_config(
            Arc::clone(&g),
            EngineConfig {
                matrix_node_limit: 0, // force the over-limit regime
                workers: 2,
                ..EngineConfig::default()
            },
        );
        assert!(!engine.matrix_available());
        assert!(!engine.hop_ready(), "index must be lazy");
        let q = rq(&g, "a0 <= 4", "a1 >= 6", "c0^2 c1");

        // deterministic path for the assertion: build inline
        let labels = engine.force_hop_labels().expect("within default budget");
        assert!(labels.is_exact());
        assert!(engine.hop_ready());
        assert_eq!(engine.plan_query(&Query::Rq(q.clone())), Plan::RqHop);

        let batch = engine.run_batch(&[Query::Rq(q.clone()), Query::Rq(q.clone())]);
        assert_eq!(batch.items()[0].plan, Plan::RqHop);
        assert_eq!(batch.items()[1].plan, Plan::RqHop);
        // bit-identical to search-based evaluation
        assert_eq!(batch.items()[0].output.as_rq().unwrap(), &q.eval_bfs(&g));
        assert_eq!(batch.items()[0].output, batch.items()[1].output);
        // wildcard queries are covered too (wildcard layer fit the budget)
        let wq = rq(&g, "a0 <= 9", "a1 >= 2", "_^2");
        assert_eq!(engine.plan_query(&Query::Rq(wq.clone())), Plan::RqHop);
        assert_eq!(
            engine.run_query(&Query::Rq(wq.clone())).as_rq().unwrap(),
            &wq.eval_bfs(&g)
        );
    }

    #[test]
    fn hop_labels_serve_over_limit_pqs() {
        let g = Arc::new(rpq_graph::gen::synthetic(600, 2400, 2, 3, 21));
        let engine = QueryEngine::with_config(
            Arc::clone(&g),
            EngineConfig {
                matrix_node_limit: 0, // force the over-limit regime
                workers: 2,
                ..EngineConfig::default()
            },
        );
        // a small acyclic pattern and a large cyclic one: over the matrix
        // limit both route to JoinMatch (the hop/cached backends measured
        // it ahead on every shape — split is a matrix-only pick), and the
        // backend flips cached → hop once the index lands
        let mut join_pq = Pq::new();
        let a = join_pq.add_node("a", Predicate::parse("a0 <= 4", g.schema()).unwrap());
        let b = join_pq.add_node("b", Predicate::parse("a1 >= 5", g.schema()).unwrap());
        join_pq.add_edge(a, b, FRegex::parse("c0^2 c1", g.alphabet()).unwrap());

        let mut ring_pq = Pq::new();
        let ring: Vec<usize> = (0..10)
            .map(|i| ring_pq.add_node(&format!("n{i}"), Predicate::always_true()))
            .collect();
        for i in 0..10 {
            ring_pq.add_edge(
                ring[i],
                ring[(i + 1) % 10],
                FRegex::parse(if i % 2 == 0 { "c0" } else { "_+" }, g.alphabet()).unwrap(),
            );
        }

        // before the index lands: cached fallback plans
        for pq in [&join_pq, &ring_pq] {
            assert_eq!(
                engine.plan_query(&Query::Pq(pq.clone())),
                Plan::PqJoinCached
            );
        }

        engine.force_hop_labels().expect("within default budget");
        let batch = engine.run_batch(&[Query::Pq(join_pq.clone()), Query::Pq(ring_pq.clone())]);
        assert_eq!(batch.items()[0].plan, Plan::PqJoinHop);
        assert_eq!(batch.items()[1].plan, Plan::PqJoinHop);
        // bit-identical to the reference fixpoint
        assert_eq!(
            batch.items()[0].output.as_pq().unwrap(),
            &join_pq.eval_naive(&g)
        );
        assert_eq!(
            batch.items()[1].output.as_pq().unwrap(),
            &ring_pq.eval_naive(&g)
        );
        // the same large ring under the matrix limit is the split regime
        let small_engine = QueryEngine::new(Arc::clone(&g));
        assert_eq!(
            small_engine.plan_query(&Query::Pq(ring_pq.clone())),
            Plan::PqSplitMatrix
        );
        assert_eq!(
            small_engine
                .run_query(&Query::Pq(ring_pq.clone()))
                .as_pq()
                .unwrap(),
            &ring_pq.eval_naive(&g)
        );
    }

    #[test]
    fn wildcard_dropped_on_budget_falls_back_for_pqs() {
        // a budget that fits concrete layers only: a PQ probing `_` is not
        // hop-usable and must keep its cached plan, while a concrete-color
        // PQ flips to the hop backend
        let g = Arc::new(rpq_graph::gen::synthetic(400, 1600, 2, 3, 33));
        let full = rpq_index::HopLabels::build(&g);
        let wildcard_bytes = {
            let all = full.bytes();
            let concrete = {
                let cfg = HopConfig {
                    wildcard_layer: false,
                    ..HopConfig::default()
                };
                rpq_index::HopLabels::build_with(&g, &cfg, None)
                    .unwrap()
                    .bytes()
            };
            all - concrete
        };
        let engine = QueryEngine::with_config(
            Arc::clone(&g),
            EngineConfig {
                matrix_node_limit: 0,
                hop_label_budget: full.bytes() - wildcard_bytes / 2,
                ..EngineConfig::default()
            },
        );
        let labels = engine.force_hop_labels().expect("concrete layers fit");
        assert!(!labels.has_layer(rpq_graph::WILDCARD));

        let mk = |re: &str| {
            let mut pq = Pq::new();
            let a = pq.add_node("a", Predicate::parse("a0 <= 5", g.schema()).unwrap());
            let b = pq.add_node("b", Predicate::always_true());
            pq.add_edge(a, b, FRegex::parse(re, g.alphabet()).unwrap());
            pq
        };
        assert_eq!(engine.plan_query(&Query::Pq(mk("c0 c1"))), Plan::PqJoinHop);
        assert_eq!(
            engine.plan_query(&Query::Pq(mk("c0 _^2"))),
            Plan::PqJoinCached
        );
        // and both still answer correctly
        for re in ["c0 c1", "c0 _^2"] {
            let pq = mk(re);
            assert_eq!(
                engine.run_query(&Query::Pq(pq.clone())).as_pq().unwrap(),
                &pq.eval_naive(&g),
                "{re}"
            );
        }
    }

    #[test]
    fn background_build_lands_and_later_batches_use_it() {
        let g = Arc::new(rpq_graph::gen::synthetic(300, 1200, 2, 3, 5));
        let engine = QueryEngine::with_config(
            Arc::clone(&g),
            EngineConfig {
                matrix_node_limit: 0,
                ..EngineConfig::default()
            },
        );
        let q = rq(&g, "a0 <= 5", "a1 >= 5", "c0 c1");
        // first batch: kicks the build; its own plan is a search fallback
        // or (if the tiny build won the race) already hop — both correct
        let first = engine.run_batch(&[Query::Rq(q.clone())]);
        let reference = q.eval_bfs(&g);
        assert_eq!(first.items()[0].output.as_rq().unwrap(), &reference);
        // wait for the background build to land
        let t0 = std::time::Instant::now();
        while !engine.hop_ready() && t0.elapsed() < std::time::Duration::from_secs(30) {
            std::thread::yield_now();
        }
        assert!(engine.hop_ready(), "background build never landed");
        let second = engine.run_batch(&[Query::Rq(q.clone())]);
        assert_eq!(second.items()[0].plan, Plan::RqHop);
        assert_eq!(second.items()[0].output.as_rq().unwrap(), &reference);
    }

    #[test]
    fn over_budget_build_pins_search_fallback() {
        let g = Arc::new(rpq_graph::gen::synthetic(200, 800, 2, 3, 9));
        let engine = QueryEngine::with_config(
            Arc::clone(&g),
            EngineConfig {
                matrix_node_limit: 0,
                hop_label_budget: 1, // nothing fits
                ..EngineConfig::default()
            },
        );
        assert!(engine.force_hop_labels().is_none());
        let q = rq(&g, "a0 <= 5", "a1 >= 5", "c0 c1");
        assert_ne!(engine.plan_query(&Query::Rq(q.clone())), Plan::RqHop);
        assert_eq!(
            engine.run_query(&Query::Rq(q.clone())).as_rq().unwrap(),
            &q.eval_bfs(&g)
        );
    }

    #[test]
    fn busted_hop_budget_flips_to_sharded_plans() {
        let g = Arc::new(rpq_graph::gen::clustered(400, 1600, 4, 2, 3, 60, 7));
        let engine = QueryEngine::with_config(
            Arc::clone(&g),
            EngineConfig {
                matrix_node_limit: 0, // over-limit regime
                hop_label_budget: 1,  // the single-index build cannot fit
                shards: 4,
                shard_memory_budget: 0, // unlimited per-shard builds
                workers: 2,
                ..EngineConfig::default()
            },
        );
        // while the hop build hasn't failed yet, sharding stays out of
        // policy — the single index is still preferred
        assert!(engine.force_sharded_labels().is_none());
        assert!(engine.force_hop_labels().is_none(), "hop build over budget");
        // now the flip: policy admits the sharded fallback
        let labels = engine.force_sharded_labels().expect("sharded build fits");
        assert_eq!(labels.sharded_graph().k(), 4);
        assert!(engine.sharded_ready());

        let q = rq(&g, "a0 <= 4", "a1 >= 6", "c0^2 c1");
        assert_eq!(engine.plan_query(&Query::Rq(q.clone())), Plan::RqSharded);
        let mut pq = Pq::new();
        let a = pq.add_node("a", Predicate::parse("a0 <= 3", g.schema()).unwrap());
        let b = pq.add_node("b", Predicate::parse("a1 >= 5", g.schema()).unwrap());
        pq.add_edge(a, b, FRegex::parse("c0 c1", g.alphabet()).unwrap());
        assert_eq!(
            engine.plan_query(&Query::Pq(pq.clone())),
            Plan::PqJoinSharded
        );

        let batch = engine.run_batch(&[Query::Rq(q.clone()), Query::Pq(pq.clone())]);
        assert_eq!(batch.items()[0].plan, Plan::RqSharded);
        assert_eq!(batch.items()[1].plan, Plan::PqJoinSharded);
        assert_eq!(batch.items()[0].output.as_rq().unwrap(), &q.eval_bfs(&g));
        assert_eq!(batch.items()[1].output.as_pq().unwrap(), &pq.eval_naive(&g));
    }

    #[test]
    fn split_crossover_config_changes_plans() {
        let g = Arc::new(essembly());
        let mut ring_pq = Pq::new();
        let ring: Vec<usize> = (0..4)
            .map(|i| ring_pq.add_node(&format!("n{i}"), Predicate::always_true()))
            .collect();
        for i in 0..4 {
            ring_pq.add_edge(
                ring[i],
                ring[(i + 1) % 4],
                FRegex::parse("fa", g.alphabet()).unwrap(),
            );
        }
        // normalized size 8: join under the default crossover of 16
        let default_engine = QueryEngine::new(Arc::clone(&g));
        assert_eq!(
            default_engine.plan_query(&Query::Pq(ring_pq.clone())),
            Plan::PqJoinMatrix
        );
        // a deployment lowering the crossover flips the same pattern
        let tuned = QueryEngine::with_config(
            Arc::clone(&g),
            EngineConfig {
                split_crossover: 8,
                ..EngineConfig::default()
            },
        );
        assert_eq!(
            tuned.plan_query(&Query::Pq(ring_pq.clone())),
            Plan::PqSplitMatrix
        );
        // and both answer identically
        assert_eq!(
            tuned
                .run_query(&Query::Pq(ring_pq.clone()))
                .as_pq()
                .unwrap(),
            &ring_pq.eval_naive(&g)
        );
    }

    #[test]
    fn builder_validates() {
        let built = EngineConfig::builder()
            .workers(2)
            .shards(4)
            .shard_memory_budget(1 << 20)
            .build()
            .unwrap();
        assert_eq!(built.workers, 2);
        assert_eq!(built.shards, 4);
        assert_eq!(built.shard_memory_budget, 1 << 20);
        // untouched fields keep their defaults
        assert_eq!(
            built.matrix_node_limit,
            EngineConfig::default().matrix_node_limit
        );

        assert_eq!(
            EngineConfig::builder().reach_cache_capacity(0).build(),
            Err(ConfigError::ZeroReachCache)
        );
        assert_eq!(
            EngineConfig::builder().shards(0).build(),
            Err(ConfigError::ZeroShards)
        );
        assert_eq!(
            EngineConfig::builder().split_crossover(0).build(),
            Err(ConfigError::ZeroSplitCrossover)
        );
        assert!(matches!(
            EngineConfig::builder().workers(usize::MAX).build(),
            Err(ConfigError::TooManyWorkers { .. })
        ));
    }

    #[test]
    fn retired_engine_never_pins_failure() {
        let g = Arc::new(rpq_graph::gen::synthetic(150, 500, 2, 3, 2));
        let engine = QueryEngine::with_config(
            Arc::clone(&g),
            EngineConfig {
                matrix_node_limit: 0,
                ..EngineConfig::default()
            },
        );
        engine.retire_index_builds();
        engine.ensure_hop_build();
        // the background build is cancelled at its first landmark check and
        // leaves the cell empty (whether it has run yet or not)
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(engine.hop.get().is_none(), "cancel must not pin a failure");
        assert!(!engine.hop_ready());
        // a forced build on a retired engine still works (force is
        // deliberate and synchronous, so the epoch flag does not apply)
        assert!(engine.force_hop_labels().is_some());
    }
}
