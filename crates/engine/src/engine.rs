//! The [`QueryEngine`]: one immutable graph, lazily-built shared indices,
//! and scoped-thread batch evaluation.

use crate::batch::{BatchItem, BatchResult, Query, QueryOutput};
use crate::memo::ReachMemo;
use crate::planner::{self, Plan};
use rpq_core::join_match::JoinMatch;
use rpq_core::reach::{CachedReach, MatrixReach};
use rpq_core::rq::RqResult;
use rpq_graph::{DistanceMatrix, Graph};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Engine tuning knobs.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker threads per batch; `0` means one per available core.
    pub workers: usize,
    /// Build the per-color distance matrix lazily iff
    /// `|V| <= matrix_node_limit` (the matrix costs O(|Σ|·|V|²) memory —
    /// the default keeps it a few tens of megabytes).
    pub matrix_node_limit: usize,
    /// Capacity of each worker's LRU reachability cache (used by the
    /// cached PQ backend on graphs too large for the matrix).
    pub cache_capacity: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: 0,
            matrix_node_limit: 2048,
            cache_capacity: 1 << 16,
        }
    }
}

/// A shared, immutable graph plus lazily-built indices, evaluating batches
/// of mixed [`Query::Rq`] / [`Query::Pq`] queries on scoped worker threads.
///
/// The engine is `Sync`: one instance can serve batches from many threads;
/// index construction happens at most once.
#[derive(Debug)]
pub struct QueryEngine {
    graph: Arc<Graph>,
    config: EngineConfig,
    matrix: OnceLock<DistanceMatrix>,
}

impl QueryEngine {
    /// Engine over `graph` with default configuration.
    pub fn new(graph: Arc<Graph>) -> Self {
        Self::with_config(graph, EngineConfig::default())
    }

    /// Engine over `graph` with explicit configuration.
    pub fn with_config(graph: Arc<Graph>, config: EngineConfig) -> Self {
        QueryEngine {
            graph,
            config,
            matrix: OnceLock::new(),
        }
    }

    /// The shared graph.
    pub fn graph(&self) -> &Arc<Graph> {
        &self.graph
    }

    /// The active configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Would the planner see a distance matrix for this graph? True once
    /// built, or when the graph is small enough that the engine will build
    /// it on first use.
    pub fn matrix_available(&self) -> bool {
        self.matrix.get().is_some() || self.graph.node_count() <= self.config.matrix_node_limit
    }

    /// The distance matrix, building it first if the policy allows;
    /// `None` when the graph is over the node limit and no matrix exists.
    pub fn matrix(&self) -> Option<&DistanceMatrix> {
        if self.graph.node_count() <= self.config.matrix_node_limit {
            Some(
                self.matrix
                    .get_or_init(|| DistanceMatrix::build(&self.graph)),
            )
        } else {
            self.matrix.get()
        }
    }

    /// Build the matrix unconditionally (callers who know the footprint is
    /// acceptable can opt in above the node limit).
    pub fn force_matrix(&self) -> &DistanceMatrix {
        self.matrix
            .get_or_init(|| DistanceMatrix::build(&self.graph))
    }

    /// The plan the engine would pick for `query` outside any batch.
    pub fn plan_query(&self, query: &Query) -> Plan {
        match query {
            Query::Rq(rq) => planner::plan_rq(&rq.regex, self.matrix_available(), false),
            Query::Pq(_) => planner::plan_pq(self.matrix_available()),
        }
    }

    /// Evaluate one query (a batch of one, on the calling thread).
    pub fn run_query(&self, query: &Query) -> QueryOutput {
        self.run_query_with_memo(query, &ReachMemo::new())
    }

    /// Evaluate one query against a caller-provided reach-set memo (the
    /// snapshot layer passes a snapshot-lifetime memo so repeated keys are
    /// shared across batches, not just within one).
    pub fn run_query_with_memo(&self, query: &Query, memo: &ReachMemo) -> QueryOutput {
        let plan = self.plan_query(query);
        if plan_needs_matrix(plan) {
            self.matrix();
        }
        let mut cached = CachedReach::new(self.config.cache_capacity);
        self.eval_one(query, plan, memo, &mut cached)
    }

    /// Evaluate a batch: plan each query (batch-aware), then pull queries
    /// off a shared counter from `workers` scoped threads. Outputs come
    /// back in submission order and are identical to sequential
    /// single-query evaluation — the strategies differ only in cost.
    pub fn run_batch(&self, queries: &[Query]) -> BatchResult {
        self.run_batch_with_memo(queries, &ReachMemo::new())
    }

    /// [`run_batch`](QueryEngine::run_batch) against a caller-provided
    /// memo, so reach sets survive across batches for as long as the memo
    /// does (one graph version, in snapshot-based serving). The reported
    /// memo stats are this batch's delta; under concurrent batches sharing
    /// one memo they are approximate.
    pub fn run_batch_with_memo(&self, queries: &[Query], memo: &ReachMemo) -> BatchResult {
        let t0 = Instant::now();
        let (hits0, misses0) = memo.stats();
        if queries.is_empty() {
            return BatchResult::new(Vec::new(), t0.elapsed(), 0, (0, 0));
        }

        // batch-shape analysis: RQ keys that repeat share one reach set
        let mut key_count: HashMap<_, u32> = HashMap::new();
        for q in queries {
            if let Query::Rq(rq) = q {
                *key_count.entry((&rq.from, &rq.regex)).or_insert(0) += 1;
            }
        }
        let matrix_available = self.matrix_available();
        let plans: Vec<Plan> = queries
            .iter()
            .map(|q| match q {
                Query::Rq(rq) => {
                    let shared = key_count[&(&rq.from, &rq.regex)] > 1;
                    planner::plan_rq(&rq.regex, matrix_available, shared)
                }
                Query::Pq(_) => planner::plan_pq(matrix_available),
            })
            .collect();

        // build the shared index once, before workers start
        if plans.iter().any(|&p| plan_needs_matrix(p)) {
            self.matrix();
        }

        let workers = self.worker_count(queries.len());
        let next = AtomicUsize::new(0);
        let slots: Vec<OnceLock<(QueryOutput, std::time::Duration)>> =
            (0..queries.len()).map(|_| OnceLock::new()).collect();

        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| {
                    let mut cached = CachedReach::new(self.config.cache_capacity);
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= queries.len() {
                            break;
                        }
                        let t = Instant::now();
                        let out = self.eval_one(&queries[i], plans[i], memo, &mut cached);
                        slots[i]
                            .set((out, t.elapsed()))
                            .unwrap_or_else(|_| unreachable!("each index is claimed once"));
                    }
                });
            }
        });

        let items = slots
            .into_iter()
            .zip(&plans)
            .map(|(slot, &plan)| {
                let (output, time) = slot.into_inner().expect("worker filled every slot");
                BatchItem { output, plan, time }
            })
            .collect();
        let (hits1, misses1) = memo.stats();
        BatchResult::new(
            items,
            t0.elapsed(),
            workers,
            (hits1 - hits0, misses1 - misses0),
        )
    }

    fn worker_count(&self, batch_len: usize) -> usize {
        let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
        let configured = if self.config.workers == 0 {
            hw
        } else {
            self.config.workers
        };
        configured.clamp(1, batch_len.max(1))
    }

    fn eval_one(
        &self,
        query: &Query,
        plan: Plan,
        memo: &ReachMemo,
        cached: &mut CachedReach,
    ) -> QueryOutput {
        let g = self.graph.as_ref();
        match (query, plan) {
            (Query::Rq(rq), Plan::RqDm) => {
                let m = self.matrix.get().expect("DM plan requires the matrix");
                QueryOutput::Rq(rq.eval_with_matrix(g, m))
            }
            (Query::Rq(rq), Plan::RqBiBfs) => QueryOutput::Rq(rq.eval_bibfs(g)),
            (Query::Rq(rq), Plan::RqBfsMemo) => {
                let pairs = memo.reach_pairs(g, &rq.from, &rq.regex);
                let hits = pairs
                    .iter()
                    .filter(|&&(_, y)| rq.to.matches(g.attrs(y)))
                    .copied()
                    .collect();
                QueryOutput::Rq(RqResult::from_pairs(hits))
            }
            (Query::Pq(pq), Plan::PqJoinMatrix) => {
                let m = self.matrix.get().expect("DM plan requires the matrix");
                QueryOutput::Pq(Arc::new(JoinMatch::eval(pq, g, &mut MatrixReach::new(m))))
            }
            (Query::Pq(pq), Plan::PqJoinCached) => {
                QueryOutput::Pq(Arc::new(JoinMatch::eval(pq, g, cached)))
            }
            (Query::Rq(_), _) | (Query::Pq(_), _) => {
                unreachable!("planner assigned a {plan:?} plan to a mismatched query kind")
            }
        }
    }
}

fn plan_needs_matrix(plan: Plan) -> bool {
    matches!(plan, Plan::RqDm | Plan::PqJoinMatrix)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpq_core::pq::Pq;
    use rpq_core::predicate::Predicate;
    use rpq_core::rq::Rq;
    use rpq_graph::gen::essembly;
    use rpq_regex::FRegex;

    fn rq(g: &Graph, from: &str, to: &str, re: &str) -> Rq {
        Rq::new(
            Predicate::parse(from, g.schema()).unwrap(),
            Predicate::parse(to, g.schema()).unwrap(),
            FRegex::parse(re, g.alphabet()).unwrap(),
        )
    }

    #[test]
    fn batch_equals_sequential_on_essembly() {
        let g = Arc::new(essembly());
        let engine = QueryEngine::with_config(
            Arc::clone(&g),
            EngineConfig {
                workers: 3,
                ..EngineConfig::default()
            },
        );
        let q1 = rq(
            &g,
            "job = \"biologist\" && sp = \"cloning\"",
            "job = \"doctor\"",
            "fa^2 fn",
        );
        let mut pq = Pq::new();
        let a = pq.add_node(
            "a",
            Predicate::parse("job = \"doctor\"", g.schema()).unwrap(),
        );
        let b = pq.add_node("b", Predicate::always_true());
        pq.add_edge(a, b, FRegex::parse("fn+", g.alphabet()).unwrap());

        let queries: Vec<Query> = vec![
            Query::Rq(q1.clone()),
            Query::Pq(pq.clone()),
            Query::Rq(q1.clone()),
            Query::Rq(rq(&g, "job = \"physician\"", "job = \"doctor\"", "sn+")),
        ];
        let batch = engine.run_batch(&queries);
        assert_eq!(batch.len(), 4);
        assert_eq!(batch.workers(), 3);

        let m = DistanceMatrix::build(&g);
        assert_eq!(
            batch.items()[0].output.as_rq().unwrap(),
            &q1.eval_with_matrix(&g, &m)
        );
        assert_eq!(
            batch.items()[1].output.as_pq().unwrap(),
            &JoinMatch::eval(&pq, &g, &mut MatrixReach::new(&m))
        );
        assert_eq!(batch.items()[0].output, batch.items()[2].output);
        assert!(batch.items()[3].output.as_rq().unwrap().is_empty());
        assert!(batch.total_query_time() >= batch.items()[0].time);
    }

    #[test]
    fn small_graph_builds_matrix_lazily() {
        let g = Arc::new(essembly());
        let engine = QueryEngine::new(Arc::clone(&g));
        assert!(engine.matrix_available());
        assert!(engine.matrix.get().is_none(), "matrix must be lazy");
        let q = Query::Rq(rq(&g, "job = \"doctor\"", "job = \"doctor\"", "fa"));
        assert_eq!(engine.plan_query(&q), Plan::RqDm);
        engine.run_query(&q);
        assert!(
            engine.matrix.get().is_some(),
            "DM plan should have built it"
        );
    }

    #[test]
    fn over_limit_graph_avoids_matrix() {
        let g = Arc::new(essembly());
        let engine = QueryEngine::with_config(
            Arc::clone(&g),
            EngineConfig {
                matrix_node_limit: 0,
                workers: 2,
                ..EngineConfig::default()
            },
        );
        assert!(!engine.matrix_available());
        let shared = rq(&g, "job = \"biologist\"", "job = \"doctor\"", "fa^2 fn");
        let solo = rq(&g, "job = \"doctor\"", "job = \"biologist\"", "fa fn");
        let batch = engine.run_batch(&[
            Query::Rq(shared.clone()),
            Query::Rq(shared.clone()),
            Query::Rq(solo.clone()),
        ]);
        assert!(engine.matrix.get().is_none());
        assert_eq!(batch.items()[0].plan, Plan::RqBfsMemo);
        assert_eq!(batch.items()[1].plan, Plan::RqBfsMemo);
        assert_eq!(batch.items()[2].plan, Plan::RqBiBfs);
        // outputs still equal the reference strategies
        assert_eq!(
            batch.items()[0].output.as_rq().unwrap(),
            &shared.eval_bfs(&g)
        );
        assert_eq!(batch.items()[2].output.as_rq().unwrap(), &solo.eval_bfs(&g));
        let (hits, misses) = batch.memo_stats();
        assert_eq!(misses, 1, "shared key computed once");
        assert_eq!(hits, 1, "second probe reused it");
    }

    #[test]
    fn empty_batch() {
        let engine = QueryEngine::new(Arc::new(essembly()));
        let batch = engine.run_batch(&[]);
        assert!(batch.is_empty());
        assert_eq!(batch.workers(), 0);
    }
}
