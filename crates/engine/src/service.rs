//! The unified serving surface: [`QueryService`].
//!
//! The repo grew four engine types — [`QueryEngine`] (one immutable
//! graph), [`Snapshot`] (one pinned version of a live graph),
//! [`ShardedEngine`] (partitioned index as the primary regime) and
//! [`UpdatableEngine`] (the live writer/reader pair) — and each
//! re-declared `run_query`/`run_batch`/`plan_query` ad hoc. Anything
//! that serves queries without caring which engine backs them (the
//! `rpq-server` front-end, the bench harness, parity tests) had to be
//! generic-by-duplication. [`QueryService`] is the one trait they all
//! implement; serving code takes `&dyn QueryService` and the choice of
//! backend becomes deployment configuration.

use crate::batch::{BatchResult, Query, QueryOutput};
use crate::engine::QueryEngine;
use crate::planner::Plan;
use crate::sharded::ShardedEngine;
use crate::snapshot::Snapshot;
use crate::updatable::UpdatableEngine;
use rpq_graph::Graph;
use std::sync::Arc;

/// A backend that evaluates RQ/PQ queries: the one interface the server,
/// the bench harness and parity tests program against.
///
/// All four engine types implement it:
///
/// | implementor | graph | notes |
/// |---|---|---|
/// | [`QueryEngine`] | immutable | lazily-built matrix / hop / sharded indices |
/// | [`Snapshot`] | one pinned version | standing-query answers spliced in |
/// | [`ShardedEngine`] | immutable, partitioned | pinned to sharded plans |
/// | [`UpdatableEngine`] | live | each call runs on the *current* snapshot |
///
/// The contract every implementor keeps: outputs are **bit-identical**
/// across backends and to sequential single-query evaluation —
/// strategies differ only in cost. `run_batch` returns outputs in
/// submission order.
///
/// The trait is object-safe; serving code takes `&dyn QueryService` so
/// the backend is chosen at deployment time, not compile time:
///
/// ```
/// use std::sync::Arc;
/// use rpq_engine::{Query, QueryEngine, QueryService, UpdatableEngine};
/// use rpq_graph::gen::essembly;
///
/// fn answer(svc: &dyn QueryService, text: &str) -> usize {
///     let q = Query::parse_pq(text, &svc.graph()).unwrap();
///     svc.run_query(&q).match_count()
/// }
///
/// let text = "node a: job = \"doctor\"; node b; edge a -> b: fn+";
/// let fixed = QueryEngine::new(Arc::new(essembly()));
/// let live = UpdatableEngine::new(essembly());
/// assert_eq!(answer(&fixed, text), answer(&live, text));
/// ```
pub trait QueryService: Send + Sync {
    /// The graph this service answers against. An owned `Arc` because a
    /// live engine's graph changes with every published version — the
    /// returned handle pins the version current at the time of the call.
    fn graph(&self) -> Arc<Graph>;

    /// The plan this service would pick for `query` right now (batch
    /// context and in-flight index builds can still shift it).
    fn plan_query(&self, query: &Query) -> Plan;

    /// Evaluate one query (a batch of one).
    fn run_query(&self, query: &Query) -> QueryOutput;

    /// Evaluate a batch; outputs come back in submission order.
    fn run_batch(&self, queries: &[Query]) -> BatchResult;

    /// Evaluate one query and return its execution profile — the
    /// `explain` surface. The default implementation wraps
    /// [`plan_query`](QueryService::plan_query) +
    /// [`run_query`](QueryService::run_query) in a coarse two-stage
    /// profile, so external implementors get a well-formed (if shallow)
    /// profile for free; the in-tree engines override it with detailed
    /// stage timings, rationale, probe counts, and fan-out.
    fn run_query_profiled(&self, query: &Query) -> (QueryOutput, rpq_trace::QueryProfile) {
        let t0 = std::time::Instant::now();
        let plan = self.plan_query(query);
        let mut profile = rpq_trace::QueryProfile::new(
            String::new(),
            plan.name().to_owned(),
            "profiled through the QueryService default (no engine-level detail)".to_owned(),
        );
        let t1 = std::time::Instant::now();
        profile.stage("plan", t1 - t0, String::new());
        let out = self.run_query(query);
        let t2 = std::time::Instant::now();
        profile.stage("eval", t2 - t1, String::new());
        profile.matches = out.match_count() as u64;
        profile.wall = t2 - t0;
        (out, profile)
    }
}

impl QueryService for QueryEngine {
    fn graph(&self) -> Arc<Graph> {
        Arc::clone(QueryEngine::graph(self))
    }

    fn plan_query(&self, query: &Query) -> Plan {
        QueryEngine::plan_query(self, query)
    }

    fn run_query(&self, query: &Query) -> QueryOutput {
        QueryEngine::run_query(self, query)
    }

    fn run_batch(&self, queries: &[Query]) -> BatchResult {
        QueryEngine::run_batch(self, queries)
    }

    fn run_query_profiled(&self, query: &Query) -> (QueryOutput, rpq_trace::QueryProfile) {
        QueryEngine::run_query_profiled(self, query)
    }
}

impl QueryService for Snapshot {
    fn graph(&self) -> Arc<Graph> {
        Arc::clone(Snapshot::graph(self))
    }

    fn plan_query(&self, query: &Query) -> Plan {
        Snapshot::plan_query(self, query)
    }

    fn run_query(&self, query: &Query) -> QueryOutput {
        Snapshot::run_query(self, query)
    }

    fn run_batch(&self, queries: &[Query]) -> BatchResult {
        Snapshot::run_batch(self, queries)
    }

    fn run_query_profiled(&self, query: &Query) -> (QueryOutput, rpq_trace::QueryProfile) {
        Snapshot::run_query_profiled(self, query)
    }
}

/// Serving goes through the engine-lifetime memo
/// ([`ShardedEngine::memo`]): repeated and semantically-contained RQ
/// traffic is answered from cache across calls, and profiles report the
/// persistent cache's hit/miss behavior rather than a cold per-call one.
impl QueryService for ShardedEngine {
    fn graph(&self) -> Arc<Graph> {
        Arc::clone(ShardedEngine::graph(self))
    }

    fn plan_query(&self, query: &Query) -> Plan {
        self.engine().plan_query(query)
    }

    fn run_query(&self, query: &Query) -> QueryOutput {
        self.engine().run_query_with_memo(query, self.memo())
    }

    fn run_batch(&self, queries: &[Query]) -> BatchResult {
        self.engine().run_batch_with_memo(queries, self.memo())
    }

    fn run_query_profiled(&self, query: &Query) -> (QueryOutput, rpq_trace::QueryProfile) {
        self.engine()
            .run_query_profiled_with_memo(query, self.memo())
    }
}

/// Every call runs against the snapshot current *at that call* — two
/// queries of one `run_batch` see one version, two `run_batch` calls may
/// not. Pin a [`Snapshot`] (itself a `QueryService`) when several batches
/// must agree on a version.
impl QueryService for UpdatableEngine {
    fn graph(&self) -> Arc<Graph> {
        Arc::clone(self.snapshot().graph())
    }

    fn plan_query(&self, query: &Query) -> Plan {
        self.snapshot().plan_query(query)
    }

    fn run_query(&self, query: &Query) -> QueryOutput {
        self.snapshot().run_query(query)
    }

    fn run_batch(&self, queries: &[Query]) -> BatchResult {
        self.snapshot().run_batch(queries)
    }

    fn run_query_profiled(&self, query: &Query) -> (QueryOutput, rpq_trace::QueryProfile) {
        self.snapshot().run_query_profiled(query)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpq_graph::gen::essembly;

    type NamedServices = Vec<(&'static str, Box<dyn QueryService>)>;

    fn services() -> (NamedServices, Arc<Graph>) {
        let g = Arc::new(essembly());
        let fixed = QueryEngine::new(Arc::clone(&g));
        let live = UpdatableEngine::new(essembly());
        let snap: Arc<Snapshot> = live.snapshot();
        // a snapshot pulled out of a live engine is a service of its own
        struct Pinned(Arc<Snapshot>);
        impl QueryService for Pinned {
            fn graph(&self) -> Arc<Graph> {
                QueryService::graph(&*self.0)
            }
            fn plan_query(&self, q: &Query) -> Plan {
                self.0.plan_query(q)
            }
            fn run_query(&self, q: &Query) -> QueryOutput {
                self.0.run_query(q)
            }
            fn run_batch(&self, qs: &[Query]) -> BatchResult {
                self.0.run_batch(qs)
            }
        }
        (
            vec![
                ("engine", Box::new(fixed)),
                ("live", Box::new(live)),
                ("snapshot", Box::new(Pinned(snap))),
            ],
            g,
        )
    }

    #[test]
    fn backends_agree_through_the_trait() {
        let (services, g) = services();
        let rq = Query::parse_rq(
            "job = \"biologist\" && sp = \"cloning\"",
            "job = \"doctor\"",
            "fa^2 fn",
            &g,
        )
        .unwrap();
        let pq = Query::parse_pq("node a: job = \"doctor\"; node b; edge a -> b: fn+", &g).unwrap();
        let mut reference: Option<Vec<QueryOutput>> = None;
        for (name, svc) in &services {
            assert_eq!(svc.graph().node_count(), g.node_count(), "{name}");
            let batch = svc.run_batch(&[rq.clone(), pq.clone()]);
            let outputs: Vec<QueryOutput> = batch.outputs().cloned().collect();
            assert_eq!(outputs[0], svc.run_query(&rq), "{name}: batch vs single");
            match &reference {
                None => reference = Some(outputs),
                Some(r) => assert_eq!(r, &outputs, "{name}: backend disagrees"),
            }
        }
        assert_eq!(reference.unwrap()[0].match_count(), 4, "Example 2.2");
    }
}
