//! Live-update serving: [`UpdatableEngine`], the writer side of the
//! versioned-snapshot scheme.
//!
//! §7 of the paper motivates this layer: *"data graphs are frequently
//! modified, and it is too costly to re-evaluate PQs … every time the
//! graphs are updated"*. The engine therefore separates the two roles:
//!
//! * **Writers** call [`UpdatableEngine::apply`] with a batch of
//!   [`Update`]s. Under a writer mutex the batch is applied to the
//!   [`DynamicGraph`] (one O(|V| + |E| + U) rebuild), every registered
//!   standing PQ is maintained through its
//!   [`IncrementalMatcher`](rpq_core::incremental::IncrementalMatcher)
//!   (fixpoint restart from the standing match sets — §7's insertion/
//!   deletion monotonicity), and a fresh [`Snapshot`] is published by
//!   swapping one `Arc`.
//! * **Readers** call [`UpdatableEngine::snapshot`] (a read-lock `Arc`
//!   clone, no contention with the writer's update work) and run batches
//!   against it. A reader holding a snapshot is never blocked by — and
//!   never observes — a concurrent apply: it sees the graph, indices and
//!   standing answers of *its* version until it asks for a newer one.
//!
//! Standing PQs registered with [`UpdatableEngine::register_pq`] are
//! evaluated once and from then on *maintained*, not re-evaluated: each
//! published snapshot carries their current answers, and the snapshot's
//! batch path serves a matching PQ from those answers with plan
//! [`Plan::PqStanding`](crate::Plan::PqStanding).

use crate::engine::{EngineConfig, QueryEngine};
use crate::error::EngineError;
use crate::memo::ReachMemo;
use crate::snapshot::{IndexState, Snapshot, StandingEntry};
use rpq_core::incremental::{DynamicGraph, IncrementalMatcher, Update};
use rpq_core::pq::{Pq, PqResult};
use rpq_graph::{Color, DriftMonitor, Graph, NodeId};
use rpq_index::ShardedConfig;
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

/// Handle to a registered standing query (index into every snapshot's
/// standing answers, in registration order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StandingId(usize);

impl StandingId {
    pub(crate) fn index(self) -> usize {
        self.0
    }
}

/// What one [`UpdatableEngine::apply`] call did.
#[derive(Debug, Clone)]
pub struct ApplyReport {
    /// Graph version after the batch (unchanged if nothing applied).
    pub version: u64,
    /// How many of the submitted updates actually changed the graph.
    pub applied: usize,
    /// What happened to the label index on this batch — carried, repaired,
    /// or handed to a rebuild — with the work counts behind the verdict.
    pub index: IndexMaintenance,
    /// The snapshot now current — gives writers read-your-writes without a
    /// second lookup.
    pub snapshot: Arc<Snapshot>,
}

/// Index-maintenance accounting for one [`UpdatableEngine::apply`] batch:
/// how the predecessor snapshot's label index was carried into the new
/// one, observable without timing side channels.
///
/// The `labels_*` counters speak the unit of the regime that ran: for a
/// whole-graph hop index they count **landmark label sets** (carried =
/// kept verbatim, repaired = re-run pruned BFS); for the sharded index
/// they count **shards** (carried by `Arc`, repaired in place, or rebuilt
/// from scratch — membership moves and too-broad shard repairs).
#[derive(Debug, Clone)]
pub struct IndexMaintenance {
    /// The verdict, also published as
    /// [`Snapshot::index_state`](crate::Snapshot::index_state).
    pub state: IndexState,
    /// Label units carried into the new version unchanged.
    pub labels_carried: usize,
    /// Label units repaired incrementally.
    pub labels_repaired: usize,
    /// Label units rebuilt from scratch (sharded regime only).
    pub labels_rebuilt: usize,
    /// Landmarks whose pruned-BFS labels were invalidated by the batch,
    /// summed across layers (and shards).
    pub landmarks_invalidated: usize,
    /// Shards the batch touched (intra-shard changes + membership moves);
    /// `0` in the whole-graph regime.
    pub shards_touched: usize,
    /// Wall-clock time of the carry/repair step (zero when nothing ran).
    pub repair_time: Duration,
    /// Per-phase wall-clock breakdown of the whole `apply` call, in
    /// execution order: `validate` (whole-batch precondition checks),
    /// `apply` (dynamic-graph rebuild), `standing` (incremental standing
    /// matcher maintenance), `carry` (index carry/repair — equals
    /// [`repair_time`](IndexMaintenance::repair_time)), `publish`
    /// (snapshot construction and the `Arc` swap) — followed by the carry
    /// step's inner repair phases when a repair ran (`invalidate` /
    /// `re-bfs` for the hop index, `scatter` / `overlay` for the sharded
    /// one). Empty for a no-op batch. The server exports these as
    /// `rpq_repair_phase_seconds_total{phase=...}`.
    pub phases: Vec<(&'static str, Duration)>,
}

impl Default for IndexMaintenance {
    fn default() -> Self {
        IndexMaintenance {
            state: IndexState::Stale,
            labels_carried: 0,
            labels_repaired: 0,
            labels_rebuilt: 0,
            landmarks_invalidated: 0,
            shards_touched: 0,
            repair_time: Duration::ZERO,
            phases: Vec::new(),
        }
    }
}

/// One registered standing query: which dedup family it belongs to,
/// which incremental matcher maintains its match sets, and how to read
/// them. With `kappa: Some(κ)`, the registrant shares a matcher whose
/// pattern is the registrant's under the node renumbering κ — its match
/// sets are `matcher_mats[κ[u]]`, bit-identical in the registrant's own
/// node order. `None` means the matcher maintains this exact pattern.
struct StandingReg {
    pq: Pq,
    family: usize,
    matcher: usize,
    kappa: Option<Vec<usize>>,
}

/// Mutable state owned by the writer lock: the dynamic graph, the
/// maintenance state of every standing query, and the drift monitor
/// watching the sharded partition (created when the first sharded index
/// is carried).
struct WriterState {
    dynamic: DynamicGraph,
    /// One matcher per *distinct pattern shape* being maintained —
    /// deduplicated registrations share an entry (≤ one per registration).
    matchers: Vec<IncrementalMatcher>,
    /// All registrations, in [`StandingId`] order.
    registrations: Vec<StandingReg>,
    /// Dedup family representatives: the [`rpq_core::standing_form`]
    /// (canonicalized + minimized) of each family's first registrant.
    families: Vec<Pq>,
    drift: Option<DriftMonitor>,
}

/// Read a matcher's maintained match sets in a registration's own node
/// order (identity when it owns the matcher, through κ when shared).
fn remap_mats(mats: &[Vec<NodeId>], kappa: Option<&[usize]>) -> Vec<Vec<NodeId>> {
    match kappa {
        Some(k) => k.iter().map(|&w| mats[w].clone()).collect(),
        None => mats.to_vec(),
    }
}

/// A query engine over a *mutating* graph: writers apply update batches,
/// readers query immutable versioned [`Snapshot`]s, and registered
/// standing PQs are incrementally maintained instead of re-evaluated.
///
/// ```
/// use rpq_engine::{Query, UpdatableEngine};
/// use rpq_core::incremental::Update;
/// use rpq_core::pq::Pq;
/// use rpq_core::predicate::Predicate;
/// use rpq_graph::gen::essembly;
/// use rpq_regex::FRegex;
///
/// let engine = UpdatableEngine::new(essembly());
/// let g = engine.snapshot().graph().clone();
///
/// // a standing pattern: doctors reachable from biologists via fn edges
/// let mut pq = Pq::new();
/// let a = pq.add_node("a", Predicate::parse("job = \"biologist\"", g.schema()).unwrap());
/// let b = pq.add_node("b", Predicate::parse("job = \"doctor\"", g.schema()).unwrap());
/// pq.add_edge(a, b, FRegex::parse("fn+", g.alphabet()).unwrap());
/// let id = engine.register_pq(pq.clone());
///
/// // readers pin a version; writers keep publishing
/// let before = engine.snapshot();
/// let c1 = g.node_by_label("C1").unwrap();
/// let b1 = g.node_by_label("B1").unwrap();
/// let fnc = g.alphabet().get("fn").unwrap();
/// let report = engine.apply(&[Update::Insert(c1, b1, fnc)]).unwrap();
/// assert_eq!(report.applied, 1);
/// assert!(report.snapshot.version() > before.version());
///
/// // the old snapshot still answers from the old graph; the new one
/// // serves the standing query from its maintained answer
/// assert!(!before.graph().has_edge(c1, b1, fnc));
/// assert!(report.snapshot.graph().has_edge(c1, b1, fnc));
/// let out = report.snapshot.run_query(&Query::Pq(pq));
/// assert_eq!(out.as_pq().unwrap(), &*report.snapshot.standing_result(id).unwrap());
/// ```
pub struct UpdatableEngine {
    config: EngineConfig,
    writer: Mutex<WriterState>,
    current: RwLock<Arc<Snapshot>>,
}

impl UpdatableEngine {
    /// Live engine over `graph` with default configuration.
    pub fn new(graph: Graph) -> Self {
        Self::with_config(graph, EngineConfig::default())
    }

    /// Live engine over `graph` with explicit configuration (applied to
    /// every published snapshot's batch engine).
    pub fn with_config(graph: Graph, config: EngineConfig) -> Self {
        let dynamic = DynamicGraph::new(graph);
        let state = regime_state(&config, dynamic.graph_arc().node_count());
        let snapshot = Arc::new(Snapshot::new(
            dynamic.version(),
            Arc::new(QueryEngine::with_config(
                dynamic.graph_arc(),
                config.clone(),
            )),
            Arc::new(ReachMemo::persistent()),
            Vec::new(),
            state,
        ));
        UpdatableEngine {
            config,
            writer: Mutex::new(WriterState {
                dynamic,
                matchers: Vec::new(),
                registrations: Vec::new(),
                families: Vec::new(),
                drift: None,
            }),
            current: RwLock::new(snapshot),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The current snapshot: a consistent view of the latest published
    /// graph version. An `Arc` clone under a read lock — readers never
    /// wait on in-flight update work.
    pub fn snapshot(&self) -> Arc<Snapshot> {
        Arc::clone(&self.current.read().expect("snapshot lock poisoned"))
    }

    /// The currently published graph version.
    pub fn version(&self) -> u64 {
        self.snapshot().version()
    }

    /// Register a standing PQ: evaluated once now, incrementally maintained
    /// by every subsequent [`apply`](UpdatableEngine::apply), and served
    /// from the maintained answer whenever it appears in a batch.
    ///
    /// Registrations are **semantically deduplicated**: the query's
    /// [`rpq_core::standing_form`] (edge regexes canonicalized, pattern
    /// minimized by the paper's `minPQs`) is matched against existing
    /// families up to isomorphism, so two users registering syntactic
    /// variants of one query land in the same family — see
    /// [`standing_family`](UpdatableEngine::standing_family). When the new
    /// registrant's own shape maps onto an already-maintained pattern
    /// (identity for re-registrations, a node renumbering for permuted
    /// variants), **no new matcher is created and no evaluation runs**:
    /// the registration reads the shared matcher's match sets through the
    /// renumbering, bit-identical in its own node order. Only an
    /// equivalent query with a genuinely different shape (e.g. carrying a
    /// redundant edge the minimizer would fold) gets a private matcher,
    /// since its per-node answer shape cannot be served from the family's.
    pub fn register_pq(&self, pq: Pq) -> StandingId {
        let mut writer = self.writer.lock().expect("writer lock poisoned");
        let state = &mut *writer;
        let form = rpq_core::standing_form(&pq);
        let family = state
            .families
            .iter()
            .position(|f| rpq_core::pq_isomorphism(&form, f).is_some());
        let (family, matcher, kappa) = match family {
            Some(fi) => {
                let shared = state
                    .registrations
                    .iter()
                    .filter(|r| r.family == fi)
                    .find_map(|r| {
                        rpq_core::pq_isomorphism(&pq, state.matchers[r.matcher].pq())
                            .map(|k| (r.matcher, k))
                    });
                match shared {
                    Some((mi, k)) => (fi, mi, Some(k)),
                    None => (fi, push_matcher(state, &pq, &self.config), None),
                }
            }
            None => {
                state.families.push(form);
                (
                    state.families.len() - 1,
                    push_matcher(state, &pq, &self.config),
                    None,
                )
            }
        };
        let mats = remap_mats(state.matchers[matcher].match_sets(), kappa.as_deref());
        let entry = StandingEntry::new(pq.clone(), mats);
        state.registrations.push(StandingReg {
            pq,
            family,
            matcher,
            kappa,
        });
        let id = StandingId(state.registrations.len() - 1);

        // republish: same graph version, same (possibly warmed) indices,
        // one more standing answer
        let mut current = self.current.write().expect("snapshot lock poisoned");
        let mut standing = current.standing_entries().to_vec();
        standing.push(entry);
        *current = Arc::new(Snapshot::new(
            current.version(),
            current.engine_arc(),
            current.memo_arc(),
            standing,
            current.index_state(),
        ));
        id
    }

    /// Apply a batch of updates and publish the next snapshot.
    ///
    /// Under the writer lock: the dynamic graph rebuilds once, every
    /// standing matcher maintains its answer from the effective updates,
    /// the predecessor snapshot's label index is **carried forward
    /// through an incremental repair** where the cost model allows (see
    /// [`IndexState`] and [`ApplyReport::index`] — repairs that would
    /// touch too much of the index fall back to the background rebuild
    /// instead), and the new snapshot (carried or fresh per-version
    /// indices, refreshed standing answers) replaces the current one with
    /// a single `Arc` swap. A batch that changes nothing publishes
    /// nothing.
    ///
    /// In the sharded regime the carry step also watches for **partition
    /// drift**: when a sliding window of cut-ratio/balance samples
    /// degrades past the monitor's threshold, a bounded rebalancing
    /// move-set is computed ([`rpq_graph::Partition::rebalance`]) and
    /// applied without re-sharding; only the shards whose membership
    /// moved get their labels rebuilt.
    ///
    /// # Errors
    ///
    /// The whole batch is validated before any of it is applied — an
    /// update naming a node the graph does not have
    /// ([`EngineError::NodeOutOfRange`]) or a wildcard edge color
    /// ([`EngineError::WildcardEdge`]) rejects the batch atomically, with
    /// the graph unchanged and no snapshot published. (The seed panicked
    /// inside the graph builder instead; a serving front-end needs the
    /// `Err`.)
    pub fn apply(&self, updates: &[Update]) -> Result<ApplyReport, EngineError> {
        let mut writer = self.writer.lock().expect("writer lock poisoned");
        let state = &mut *writer;
        let t0 = Instant::now();
        let node_count = state.dynamic.graph_arc().node_count();
        for update in updates {
            let (u, v, color) = match *update {
                Update::Insert(u, v, c) | Update::Delete(u, v, c) => (u, v, c),
            };
            for node in [u, v] {
                if node.index() >= node_count {
                    return Err(EngineError::NodeOutOfRange {
                        node: node.0,
                        node_count,
                    });
                }
            }
            if color.is_wildcard() {
                return Err(EngineError::WildcardEdge);
            }
        }
        let t_validated = Instant::now();
        let effective = state.dynamic.apply(updates);
        if effective.is_empty() {
            let snapshot = self.snapshot();
            return Ok(ApplyReport {
                version: state.dynamic.version(),
                applied: 0,
                index: IndexMaintenance {
                    state: snapshot.index_state(),
                    ..IndexMaintenance::default()
                },
                snapshot,
            });
        }
        let t_applied = Instant::now();
        for matcher in &mut state.matchers {
            matcher.on_update(&state.dynamic, &effective);
        }
        // copy out the maintained match sets only; the full per-edge result
        // is assembled lazily by the snapshot when (and if) it is read.
        // One entry per *registration* — deduplicated registrations read
        // the shared matcher's sets through their node renumbering
        let standing: Vec<StandingEntry> = state
            .registrations
            .iter()
            .map(|r| {
                StandingEntry::new(
                    r.pq.clone(),
                    remap_mats(state.matchers[r.matcher].match_sets(), r.kappa.as_deref()),
                )
            })
            .collect();
        let t_standing = Instant::now();
        let new_graph = state.dynamic.graph_arc();
        let engine = Arc::new(QueryEngine::with_config(
            Arc::clone(&new_graph),
            self.config.clone(),
        ));
        // carry the predecessor's label index through a repair step
        // instead of unconditionally retiring it
        let changes: Vec<(NodeId, NodeId, Color)> = effective
            .iter()
            .map(|u| match *u {
                Update::Insert(a, b, c) | Update::Delete(a, b, c) => (a, b, c),
            })
            .collect();
        let prev = self.snapshot();
        let mut index = carry_index(
            &prev,
            &engine,
            &new_graph,
            &changes,
            &self.config,
            &mut state.drift,
        );
        let t_carried = Instant::now();
        let snapshot = Arc::new(Snapshot::new(
            state.dynamic.version(),
            engine,
            Arc::new(ReachMemo::persistent()),
            standing,
            index.state,
        ));
        let superseded = std::mem::replace(
            &mut *self.current.write().expect("snapshot lock poisoned"),
            Arc::clone(&snapshot),
        );
        // epoch invalidation: an index build still in flight for the old
        // version is building for nobody — readers pinning that snapshot
        // keep their (correct) search fallback, new readers get the new
        // version, so abort the stale build instead of finishing it
        superseded.engine().retire_index_builds();
        let t_published = Instant::now();
        // the carry step's own inner phases (invalidate/re-bfs, or
        // scatter/overlay) come after the five top-level ones
        let inner = std::mem::take(&mut index.phases);
        index.phases = vec![
            ("validate", t_validated - t0),
            ("apply", t_applied - t_validated),
            ("standing", t_standing - t_applied),
            ("carry", t_carried - t_standing),
            ("publish", t_published - t_carried),
        ];
        index.phases.extend(inner);
        let tracer = rpq_trace::tracer();
        if tracer.enabled() {
            tracer.record_span(
                "apply",
                "publish",
                t_published - t0,
                &format!(
                    "version={} applied={} state={:?} carried={} repaired={} rebuilt={}",
                    snapshot.version(),
                    effective.len(),
                    index.state,
                    index.labels_carried,
                    index.labels_repaired,
                    index.labels_rebuilt,
                ),
            );
        }
        Ok(ApplyReport {
            version: snapshot.version(),
            applied: effective.len(),
            index,
            snapshot,
        })
    }

    /// The maintained answer of standing query `id` in the current
    /// snapshot.
    pub fn standing_result(&self, id: StandingId) -> Option<Arc<PqResult>> {
        self.snapshot().standing_result(id)
    }

    /// The dedup family of registration `id`: registrations whose
    /// minimized canonical forms ([`rpq_core::standing_form`]) are
    /// isomorphic share one family — and, whenever their shapes permit,
    /// one incremental matcher. `None` for an unknown id.
    pub fn standing_family(&self, id: StandingId) -> Option<usize> {
        let writer = self.writer.lock().expect("writer lock poisoned");
        writer.registrations.get(id.index()).map(|r| r.family)
    }

    /// Number of incremental matchers actually maintained — at most one
    /// per registration, strictly fewer when dedup shares them (the
    /// observable cost of [`register_pq`](UpdatableEngine::register_pq)'s
    /// dedup: `apply` maintains each shared pattern once).
    pub fn standing_matcher_count(&self) -> usize {
        self.writer
            .lock()
            .expect("writer lock poisoned")
            .matchers
            .len()
    }
}

/// Create and seed an incremental matcher for `pq` (the one initial full
/// evaluation a non-deduplicated registration pays).
fn push_matcher(state: &mut WriterState, pq: &Pq, config: &EngineConfig) -> usize {
    state.matchers.push(IncrementalMatcher::with_cache_capacity(
        pq.clone(),
        &state.dynamic,
        config.reach_cache_capacity,
    ));
    state.matchers.len() - 1
}

/// The index state a snapshot starts in before any carry has happened:
/// `Rebuilding` when this deployment's config calls for a label index on
/// a graph of `n` nodes (a background build will serve it), `Stale` when
/// none applies (matrix regime, or labels disabled).
fn regime_state(config: &EngineConfig, n: usize) -> IndexState {
    let labels_apply =
        n > config.matrix_node_limit && (config.hop_label_budget > 0 || config.shards >= 2);
    if labels_apply {
        IndexState::Rebuilding
    } else {
        IndexState::Stale
    }
}

/// Fraction of the hop index's landmarks a repair may invalidate before
/// the cost model prefers a from-scratch rebuild: each invalidated
/// landmark re-runs both pruned BFS directions, so past a quarter of the
/// order the repair approaches full-build cost without its cache
/// locality.
const HOP_REPAIR_LIMIT_DIVISOR: usize = 4;

/// Carry the predecessor snapshot's label index into `next_engine`
/// through an incremental repair, recording what happened. Runs under
/// the writer lock — the cost model (invalidation limit for the hop
/// index, touched-shard majority for the sharded one) is what keeps the
/// carried work bounded there; anything broader is declined in favor of
/// the background rebuild the new engine will kick off on its own.
fn carry_index(
    prev: &Snapshot,
    next_engine: &QueryEngine,
    new_graph: &Arc<Graph>,
    changes: &[(NodeId, NodeId, Color)],
    config: &EngineConfig,
    drift: &mut Option<DriftMonitor>,
) -> IndexMaintenance {
    let t0 = Instant::now();
    let mut m = IndexMaintenance {
        state: regime_state(config, new_graph.node_count()),
        ..IndexMaintenance::default()
    };
    if let Some(hop) = prev.engine().hop_labels() {
        let landmarks = hop.node_count();
        let limit = (landmarks / HOP_REPAIR_LIMIT_DIVISOR).max(1);
        match hop.repair(new_graph, changes, config.hop_label_budget, limit, None) {
            Ok(rep) => {
                m.state = IndexState::Repaired;
                m.landmarks_invalidated = rep.landmarks_invalidated;
                m.labels_repaired = rep.landmarks_invalidated;
                m.labels_carried = landmarks - rep.landmarks_invalidated;
                m.phases = rep.phases;
                next_engine.adopt_hop_labels(Arc::new(rep.labels));
            }
            // RepairTooBroad / OverBudget: keep the Rebuilding verdict —
            // the new engine's background build takes over
            Err(e) => rpq_trace::tracer().event(
                "apply",
                "carry-fallback",
                &format!("hop repair declined, background rebuild takes over: {e}"),
            ),
        }
    } else if let Some(sl) = prev.engine().sharded_labels() {
        let old_sg = sl.sharded_graph();
        let k = old_sg.k();
        // graph layer first: patch the sharded view in place
        let mut new_sg = old_sg.apply_updates(Arc::clone(new_graph), changes);
        // drift watch: a full degraded window triggers a bounded
        // rebalance, applied as a move-set (no re-sharding); only the
        // shards whose membership moved must rebuild their labels
        let mon = drift.get_or_insert_with(|| DriftMonitor::new(&old_sg.stats()));
        mon.record(&new_sg.stats());
        let mut rebuild_shards: Vec<usize> = Vec::new();
        if mon.drifting() {
            let max_moves = (new_graph.node_count() / 8).max(16);
            let moves = new_sg.partition().rebalance(new_graph, max_moves);
            if !moves.is_empty() {
                let mut moved = vec![false; k];
                for &(v, s) in &moves {
                    moved[new_sg.partition().shard_of(v)] = true;
                    moved[s as usize] = true;
                }
                new_sg = new_sg.apply_moves(&moves);
                rebuild_shards = (0..k).filter(|&s| moved[s]).collect();
            }
            mon.rebaseline(&new_sg.stats());
        }
        // cost model: how many shards would the label layer rework?
        let mut reworked = vec![false; k];
        for &s in &rebuild_shards {
            reworked[s] = true;
        }
        for &(u, v, _) in changes {
            let p = new_sg.partition();
            if p.shard_of(u) == p.shard_of(v) {
                reworked[p.shard_of(u)] = true;
            }
        }
        m.shards_touched = reworked.iter().filter(|&&t| t).count();
        if m.shards_touched <= k / 2 {
            let scfg = ShardedConfig {
                shards: k,
                shard_budget_bytes: config.shard_memory_budget,
                wildcard_layer: true,
                build_workers: 0,
            };
            match sl.repair(Arc::new(new_sg), changes, &rebuild_shards, &scfg, None) {
                Ok(rep) => {
                    m.state = IndexState::Repaired;
                    m.labels_carried = rep.shards_carried;
                    m.labels_repaired = rep.shards_repaired;
                    m.labels_rebuilt = rep.shards_rebuilt;
                    m.landmarks_invalidated = rep.landmarks_invalidated;
                    m.phases = rep.phases;
                    next_engine.adopt_sharded_labels(Arc::new(rep.labels));
                }
                Err(e) => rpq_trace::tracer().event(
                    "apply",
                    "carry-fallback",
                    &format!("sharded repair declined, background rebuild takes over: {e}"),
                ),
            }
        } else {
            rpq_trace::tracer().event(
                "apply",
                "carry-fallback",
                &format!(
                    "{}/{k} shards touched — majority reworked, background rebuild takes over",
                    m.shards_touched
                ),
            );
        }
        // a majority of shards touched, or an over-budget repair: keep
        // the Rebuilding verdict and let the background build take over
    }
    m.repair_time = t0.elapsed();
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Plan, Query};
    use rpq_core::predicate::Predicate;
    use rpq_core::rq::Rq;
    use rpq_graph::gen::essembly;
    use rpq_regex::FRegex;

    fn fn_pq(g: &Graph) -> Pq {
        let mut pq = Pq::new();
        let a = pq.add_node(
            "a",
            Predicate::parse("job = \"doctor\"", g.schema()).unwrap(),
        );
        let b = pq.add_node("b", Predicate::always_true());
        pq.add_edge(a, b, FRegex::parse("fn+", g.alphabet()).unwrap());
        pq
    }

    #[test]
    fn snapshots_are_isolated_from_later_updates() {
        let engine = UpdatableEngine::new(essembly());
        let g = engine.snapshot().graph().clone();
        let rq = Rq::new(
            Predicate::parse("job = \"biologist\" && sp = \"cloning\"", g.schema()).unwrap(),
            Predicate::parse("job = \"doctor\"", g.schema()).unwrap(),
            FRegex::parse("fa^2 fn", g.alphabet()).unwrap(),
        );
        let before = engine.snapshot();
        let before_answer = before.run_query(&Query::Rq(rq.clone()));

        // delete the C3 fan-in the q1 paths rely on
        let c3 = g.node_by_label("C3").unwrap();
        let b1 = g.node_by_label("B1").unwrap();
        let b2 = g.node_by_label("B2").unwrap();
        let fnc = g.alphabet().get("fn").unwrap();
        let report = engine
            .apply(&[Update::Delete(c3, b1, fnc), Update::Delete(c3, b2, fnc)])
            .unwrap();
        assert_eq!(report.applied, 2);
        assert_eq!(report.version, 1);

        // the pinned snapshot still serves the pre-update answer
        assert_eq!(before.version(), 0);
        assert_eq!(before.run_query(&Query::Rq(rq.clone())), before_answer);
        assert_eq!(
            before_answer.as_rq().unwrap().len(),
            4,
            "paper Example 2.2 ground truth"
        );
        // the new snapshot sees the deletion
        let after = engine.snapshot();
        assert!(after.run_query(&Query::Rq(rq)).as_rq().unwrap().is_empty());
    }

    #[test]
    fn standing_pq_is_served_not_reevaluated() {
        let engine = UpdatableEngine::new(essembly());
        let g = engine.snapshot().graph().clone();
        let pq = fn_pq(&g);
        let id = engine.register_pq(pq.clone());

        let snap = engine.snapshot();
        assert_eq!(snap.standing_count(), 1);
        assert_eq!(snap.plan_query(&Query::Pq(pq.clone())), Plan::PqStanding);

        let batch = snap.run_batch(&[Query::Pq(pq.clone())]);
        assert_eq!(batch.items()[0].plan, Plan::PqStanding);
        assert_eq!(
            batch.items()[0].output.as_pq().unwrap(),
            &*snap.standing_result(id).unwrap()
        );
        // a PQ that is NOT registered still gets an evaluation plan
        let mut other = fn_pq(&g);
        other.add_node("c", Predicate::always_true());
        assert_ne!(snap.plan_query(&Query::Pq(other)), Plan::PqStanding);
    }

    #[test]
    fn standing_answer_tracks_updates() {
        let engine = UpdatableEngine::new(essembly());
        let g = engine.snapshot().graph().clone();
        let pq = fn_pq(&g);
        let id = engine.register_pq(pq.clone());
        let pinned = engine.snapshot();
        let initial = engine.standing_result(id).unwrap();
        assert!(!initial.is_empty());

        // cut every fn edge out of B1: the answer must shrink accordingly
        let b1 = g.node_by_label("B1").unwrap();
        let fnc = g.alphabet().get("fn").unwrap();
        let cuts: Vec<Update> = g
            .out_edges(b1)
            .iter()
            .filter(|e| e.color == fnc)
            .map(|e| Update::Delete(b1, e.node, fnc))
            .collect();
        assert!(!cuts.is_empty());
        let report = engine.apply(&cuts).unwrap();
        let maintained = report.snapshot.standing_result(id).unwrap();

        // reference: full evaluation on the new graph
        let mut cached = rpq_core::reach::CachedReach::with_default_capacity();
        let reference =
            rpq_core::join_match::JoinMatch::eval(&pq, report.snapshot.graph(), &mut cached);
        assert_eq!(&*maintained, &reference);
        assert_ne!(&*maintained, &*initial, "the cut must change the answer");
        // the pinned pre-update snapshot keeps serving the old answer
        assert_eq!(&*pinned.standing_result(id).unwrap(), &*initial);
    }

    #[test]
    fn noop_apply_publishes_nothing() {
        let engine = UpdatableEngine::new(essembly());
        let g = engine.snapshot().graph().clone();
        let c1 = g.node_by_label("C1").unwrap();
        let b1 = g.node_by_label("B1").unwrap();
        let fnc = g.alphabet().get("fn").unwrap();
        assert!(!g.has_edge(c1, b1, fnc));
        let before = engine.snapshot();
        let report = engine.apply(&[Update::Delete(c1, b1, fnc)]).unwrap();
        assert_eq!(report.applied, 0);
        assert_eq!(report.version, 0);
        assert!(Arc::ptr_eq(&before, &engine.snapshot()), "no new snapshot");
    }

    #[test]
    fn bad_updates_are_rejected_atomically() {
        let engine = UpdatableEngine::new(essembly());
        let g = engine.snapshot().graph().clone();
        let c1 = g.node_by_label("C1").unwrap();
        let b1 = g.node_by_label("B1").unwrap();
        let fnc = g.alphabet().get("fn").unwrap();
        let n = g.node_count();
        let ghost = rpq_graph::NodeId(n as u32);
        let before = engine.snapshot();

        // a good update followed by a bad one: nothing may apply
        let err = engine
            .apply(&[Update::Insert(c1, b1, fnc), Update::Insert(c1, ghost, fnc)])
            .unwrap_err();
        assert_eq!(
            err,
            crate::EngineError::NodeOutOfRange {
                node: n as u32,
                node_count: n
            }
        );
        assert_eq!(
            engine
                .apply(&[Update::Insert(c1, b1, rpq_graph::WILDCARD)])
                .unwrap_err(),
            crate::EngineError::WildcardEdge
        );
        // graph unchanged, no snapshot published
        assert!(Arc::ptr_eq(&before, &engine.snapshot()));
        assert!(!engine.snapshot().graph().has_edge(c1, b1, fnc));
    }

    fn rq(g: &Graph, from: &str, to: &str, re: &str) -> Rq {
        Rq::new(
            Predicate::parse(from, g.schema()).unwrap(),
            Predicate::parse(to, g.schema()).unwrap(),
            FRegex::parse(re, g.alphabet()).unwrap(),
        )
    }

    #[test]
    fn apply_repairs_hop_labels_across_versions() {
        // sparse on purpose: the repair cost model accepts a batch only
        // when its blast radius is a bounded fraction of the landmarks,
        // which a dense random digraph's giant reachable sets never are
        let g = rpq_graph::gen::synthetic(300, 280, 2, 3, 41);
        let engine = UpdatableEngine::with_config(
            g,
            EngineConfig::builder()
                .matrix_node_limit(0)
                .workers(2)
                .build()
                .unwrap(),
        );
        let first = engine.snapshot();
        assert_eq!(first.index_state(), crate::IndexState::Rebuilding);
        first.engine().force_hop_labels().expect("fits budget");
        let n = first.graph().node_count();

        // a small batch: the labels must be carried, not retired
        let g0 = first.graph().clone();
        let c0 = rpq_graph::Color(0);
        let report = engine
            .apply(&[
                Update::Insert(rpq_graph::NodeId(3), rpq_graph::NodeId(250), c0),
                Update::Delete(
                    g0.edges().next().map(|(u, _, _)| u).unwrap(),
                    g0.edges().next().map(|(_, v, _)| v).unwrap(),
                    g0.edges().next().map(|(_, _, c)| c).unwrap(),
                ),
            ])
            .unwrap();
        assert_eq!(report.index.state, crate::IndexState::Repaired);
        assert_eq!(report.snapshot.index_state(), crate::IndexState::Repaired);
        assert!(
            report.snapshot.engine().hop_ready(),
            "carried labels must be adopted, not rebuilt"
        );
        assert!(report.index.landmarks_invalidated > 0);
        assert_eq!(
            report.index.labels_carried + report.index.labels_repaired,
            n,
            "every landmark is either carried or repaired"
        );
        assert!(
            report.index.labels_carried > report.index.labels_repaired,
            "a 2-edge batch must not invalidate most of the index"
        );

        // the carried index plans and answers immediately — and exactly
        let g1 = report.snapshot.graph().clone();
        let q = rq(&g1, "a0 <= 4", "a1 >= 6", "c0^2 c1");
        assert_eq!(
            report.snapshot.plan_query(&Query::Rq(q.clone())),
            Plan::RqHop
        );
        assert_eq!(
            report
                .snapshot
                .run_query(&Query::Rq(q.clone()))
                .as_rq()
                .unwrap(),
            &q.eval_bfs(&g1)
        );

        // and the chain continues: the repaired index repairs again
        let report2 = engine
            .apply(&[Update::Insert(
                rpq_graph::NodeId(7),
                rpq_graph::NodeId(100),
                c0,
            )])
            .unwrap();
        assert_eq!(report2.index.state, crate::IndexState::Repaired);
        let g2 = report2.snapshot.graph().clone();
        assert_eq!(
            report2
                .snapshot
                .run_query(&Query::Rq(q.clone()))
                .as_rq()
                .unwrap(),
            &q.eval_bfs(&g2)
        );
    }

    #[test]
    fn too_broad_hop_repair_falls_back_to_rebuilding() {
        let g = rpq_graph::gen::synthetic(300, 1200, 2, 3, 41);
        let engine = UpdatableEngine::with_config(
            g,
            EngineConfig::builder()
                .matrix_node_limit(0)
                .workers(2)
                .build()
                .unwrap(),
        );
        engine.snapshot().engine().force_hop_labels().unwrap();
        // a hub-making batch: 150 new edges out of one node invalidate
        // far more than a quarter of the landmarks
        let c0 = rpq_graph::Color(0);
        let batch: Vec<Update> = (1..150)
            .map(|v| Update::Insert(rpq_graph::NodeId(0), rpq_graph::NodeId(v), c0))
            .collect();
        let report = engine.apply(&batch).unwrap();
        assert_eq!(report.index.state, crate::IndexState::Rebuilding);
        assert_eq!(report.snapshot.index_state(), crate::IndexState::Rebuilding);
        assert!(
            !report.snapshot.engine().hop_ready(),
            "declined repair must not adopt stale labels"
        );
        // answers stay correct on the fallback path
        let g1 = report.snapshot.graph().clone();
        let q = rq(&g1, "a0 <= 4", "a1 >= 6", "c0 c1");
        assert_eq!(
            report
                .snapshot
                .run_query(&Query::Rq(q.clone()))
                .as_rq()
                .unwrap(),
            &q.eval_bfs(&g1)
        );
    }

    #[test]
    fn apply_repairs_sharded_labels_across_versions() {
        let g = rpq_graph::gen::clustered(400, 1600, 4, 2, 3, 60, 7);
        let engine = UpdatableEngine::with_config(
            g,
            EngineConfig::builder()
                .matrix_node_limit(0)
                .hop_label_budget(0) // single-index path disabled
                .shards(4)
                .workers(2)
                .build()
                .unwrap(),
        );
        let first = engine.snapshot();
        first.engine().force_sharded_labels().expect("builds");

        let g0 = first.graph().clone();
        let (u, v, c) = g0.edges().next().unwrap();
        let report = engine.apply(&[Update::Delete(u, v, c)]).unwrap();
        assert_eq!(report.index.state, crate::IndexState::Repaired);
        assert!(report.snapshot.engine().sharded_ready());
        assert_eq!(
            report.index.labels_carried
                + report.index.labels_repaired
                + report.index.labels_rebuilt,
            4,
            "every shard accounted for"
        );
        assert!(report.index.shards_touched <= 2);

        let g1 = report.snapshot.graph().clone();
        let q = rq(&g1, "a0 <= 4", "a1 >= 6", "c0^2 c1");
        assert_eq!(
            report.snapshot.plan_query(&Query::Rq(q.clone())),
            Plan::RqSharded
        );
        assert_eq!(
            report
                .snapshot
                .run_query(&Query::Rq(q.clone()))
                .as_rq()
                .unwrap(),
            &q.eval_bfs(&g1)
        );

        // sustained stream: answers stay exact, index stays carried
        let mut seed = 5u64;
        for _ in 0..5 {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(7);
            let a = rpq_graph::NodeId((seed % 400) as u32);
            let b = rpq_graph::NodeId(((seed >> 16) % 400) as u32);
            let r = engine
                .apply(&[Update::Insert(a, b, rpq_graph::Color(0))])
                .unwrap();
            if r.applied == 0 {
                continue;
            }
            let gi = r.snapshot.graph().clone();
            assert_eq!(
                r.snapshot.run_query(&Query::Rq(q.clone())).as_rq().unwrap(),
                &q.eval_bfs(&gi)
            );
        }
        assert_eq!(
            engine.snapshot().index_state(),
            crate::IndexState::Repaired,
            "steady-state writes keep the index carried"
        );
    }

    #[test]
    fn matrix_regime_publishes_stale_state() {
        let engine = UpdatableEngine::new(essembly());
        assert_eq!(engine.snapshot().index_state(), crate::IndexState::Stale);
        let g = engine.snapshot().graph().clone();
        let c1 = g.node_by_label("C1").unwrap();
        let b1 = g.node_by_label("B1").unwrap();
        let fnc = g.alphabet().get("fn").unwrap();
        let report = engine.apply(&[Update::Insert(c1, b1, fnc)]).unwrap();
        assert_eq!(report.index.state, crate::IndexState::Stale);
        assert_eq!(report.index.labels_carried, 0);
        // noop applies echo the current state
        let noop = engine.apply(&[Update::Insert(c1, b1, fnc)]).unwrap();
        assert_eq!(noop.applied, 0);
        assert_eq!(noop.index.state, crate::IndexState::Stale);
    }

    #[test]
    fn standing_variants_share_one_matcher() {
        let engine = UpdatableEngine::new(essembly());
        let g = engine.snapshot().graph().clone();
        let doctor = Predicate::parse("job = \"doctor\"", g.schema()).unwrap();

        // user 1's registration
        let mut a = Pq::new();
        let a0 = a.add_node("a", doctor.clone());
        let a1 = a.add_node("b", Predicate::always_true());
        a.add_edge(a0, a1, FRegex::parse("fn fn^2", g.alphabet()).unwrap());
        // user 2's: the same query with nodes permuted, labels renamed,
        // and the regex respelled
        let mut b = Pq::new();
        let b0 = b.add_node("x", Predicate::always_true());
        let b1 = b.add_node("y", doctor);
        b.add_edge(b1, b0, FRegex::parse("fn^2 fn", g.alphabet()).unwrap());

        let id_a = engine.register_pq(a.clone());
        let id_b = engine.register_pq(b.clone());
        assert_eq!(engine.standing_family(id_a), engine.standing_family(id_b));
        assert_eq!(
            engine.standing_matcher_count(),
            1,
            "the variant must share the existing matcher, not spawn one"
        );

        // each registration is served standing, in its own node order
        let snap = engine.snapshot();
        assert_eq!(snap.plan_query(&Query::Pq(a.clone())), Plan::PqStanding);
        assert_eq!(snap.plan_query(&Query::Pq(b.clone())), Plan::PqStanding);
        assert_eq!(&*snap.standing_result(id_a).unwrap(), &a.eval_naive(&g));
        assert_eq!(&*snap.standing_result(id_b).unwrap(), &b.eval_naive(&g));

        // an unregistered respelling of user 1's query (same node order)
        // is also served from the maintained answer
        let mut a_variant = Pq::new();
        let v0 = a_variant.add_node("p", a.node(0).pred.clone());
        let v1 = a_variant.add_node("q", a.node(1).pred.clone());
        a_variant.add_edge(v0, v1, FRegex::parse("fn^2 fn", g.alphabet()).unwrap());
        assert_eq!(
            snap.plan_query(&Query::Pq(a_variant.clone())),
            Plan::PqStanding
        );
        assert_eq!(
            snap.run_query(&Query::Pq(a_variant.clone()))
                .as_pq()
                .unwrap(),
            &a_variant.eval_naive(&g)
        );

        // maintenance flows through the one matcher into both answers
        let hub = g.node_by_label("B1").unwrap();
        let fnc = g.alphabet().get("fn").unwrap();
        let cuts: Vec<Update> = g
            .out_edges(hub)
            .iter()
            .filter(|e| e.color == fnc)
            .map(|e| Update::Delete(hub, e.node, fnc))
            .collect();
        assert!(!cuts.is_empty());
        let report = engine.apply(&cuts).unwrap();
        let g1 = report.snapshot.graph().clone();
        assert_eq!(
            &*report.snapshot.standing_result(id_a).unwrap(),
            &a.eval_naive(&g1)
        );
        assert_eq!(
            &*report.snapshot.standing_result(id_b).unwrap(),
            &b.eval_naive(&g1)
        );

        // a semantically different pattern still gets its own family
        let id_other = engine.register_pq(fn_pq(&g));
        assert_ne!(
            engine.standing_family(id_other),
            engine.standing_family(id_a)
        );
        assert_eq!(engine.standing_matcher_count(), 2);
    }

    #[test]
    fn registration_republishes_without_version_bump() {
        let engine = UpdatableEngine::new(essembly());
        let g = engine.snapshot().graph().clone();
        let v0 = engine.snapshot();
        let id = engine.register_pq(fn_pq(&g));
        let v0b = engine.snapshot();
        assert_eq!(v0b.version(), v0.version());
        assert_eq!(v0.standing_count(), 0, "pinned snapshot is immutable");
        assert_eq!(v0b.standing_count(), 1);
        assert!(v0b.standing_result(id).is_some());
        assert!(v0.standing_result(id).is_none());
    }
}
