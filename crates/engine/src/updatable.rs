//! Live-update serving: [`UpdatableEngine`], the writer side of the
//! versioned-snapshot scheme.
//!
//! §7 of the paper motivates this layer: *"data graphs are frequently
//! modified, and it is too costly to re-evaluate PQs … every time the
//! graphs are updated"*. The engine therefore separates the two roles:
//!
//! * **Writers** call [`UpdatableEngine::apply`] with a batch of
//!   [`Update`]s. Under a writer mutex the batch is applied to the
//!   [`DynamicGraph`] (one O(|V| + |E| + U) rebuild), every registered
//!   standing PQ is maintained through its
//!   [`IncrementalMatcher`](rpq_core::incremental::IncrementalMatcher)
//!   (fixpoint restart from the standing match sets — §7's insertion/
//!   deletion monotonicity), and a fresh [`Snapshot`] is published by
//!   swapping one `Arc`.
//! * **Readers** call [`UpdatableEngine::snapshot`] (a read-lock `Arc`
//!   clone, no contention with the writer's update work) and run batches
//!   against it. A reader holding a snapshot is never blocked by — and
//!   never observes — a concurrent apply: it sees the graph, indices and
//!   standing answers of *its* version until it asks for a newer one.
//!
//! Standing PQs registered with [`UpdatableEngine::register_pq`] are
//! evaluated once and from then on *maintained*, not re-evaluated: each
//! published snapshot carries their current answers, and the snapshot's
//! batch path serves a matching PQ from those answers with plan
//! [`Plan::PqStanding`](crate::Plan::PqStanding).

use crate::engine::{EngineConfig, QueryEngine};
use crate::error::EngineError;
use crate::memo::ReachMemo;
use crate::snapshot::{Snapshot, StandingEntry};
use rpq_core::incremental::{DynamicGraph, IncrementalMatcher, Update};
use rpq_core::pq::{Pq, PqResult};
use rpq_graph::Graph;
use std::sync::{Arc, Mutex, RwLock};

/// Handle to a registered standing query (index into every snapshot's
/// standing answers, in registration order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StandingId(usize);

impl StandingId {
    pub(crate) fn index(self) -> usize {
        self.0
    }
}

/// What one [`UpdatableEngine::apply`] call did.
#[derive(Debug, Clone)]
pub struct ApplyReport {
    /// Graph version after the batch (unchanged if nothing applied).
    pub version: u64,
    /// How many of the submitted updates actually changed the graph.
    pub applied: usize,
    /// The snapshot now current — gives writers read-your-writes without a
    /// second lookup.
    pub snapshot: Arc<Snapshot>,
}

/// Mutable state owned by the writer lock: the dynamic graph and the
/// maintenance state of every standing query.
struct WriterState {
    dynamic: DynamicGraph,
    matchers: Vec<IncrementalMatcher>,
}

/// A query engine over a *mutating* graph: writers apply update batches,
/// readers query immutable versioned [`Snapshot`]s, and registered
/// standing PQs are incrementally maintained instead of re-evaluated.
///
/// ```
/// use rpq_engine::{Query, UpdatableEngine};
/// use rpq_core::incremental::Update;
/// use rpq_core::pq::Pq;
/// use rpq_core::predicate::Predicate;
/// use rpq_graph::gen::essembly;
/// use rpq_regex::FRegex;
///
/// let engine = UpdatableEngine::new(essembly());
/// let g = engine.snapshot().graph().clone();
///
/// // a standing pattern: doctors reachable from biologists via fn edges
/// let mut pq = Pq::new();
/// let a = pq.add_node("a", Predicate::parse("job = \"biologist\"", g.schema()).unwrap());
/// let b = pq.add_node("b", Predicate::parse("job = \"doctor\"", g.schema()).unwrap());
/// pq.add_edge(a, b, FRegex::parse("fn+", g.alphabet()).unwrap());
/// let id = engine.register_pq(pq.clone());
///
/// // readers pin a version; writers keep publishing
/// let before = engine.snapshot();
/// let c1 = g.node_by_label("C1").unwrap();
/// let b1 = g.node_by_label("B1").unwrap();
/// let fnc = g.alphabet().get("fn").unwrap();
/// let report = engine.apply(&[Update::Insert(c1, b1, fnc)]).unwrap();
/// assert_eq!(report.applied, 1);
/// assert!(report.snapshot.version() > before.version());
///
/// // the old snapshot still answers from the old graph; the new one
/// // serves the standing query from its maintained answer
/// assert!(!before.graph().has_edge(c1, b1, fnc));
/// assert!(report.snapshot.graph().has_edge(c1, b1, fnc));
/// let out = report.snapshot.run_query(&Query::Pq(pq));
/// assert_eq!(out.as_pq().unwrap(), &*report.snapshot.standing_result(id).unwrap());
/// ```
pub struct UpdatableEngine {
    config: EngineConfig,
    writer: Mutex<WriterState>,
    current: RwLock<Arc<Snapshot>>,
}

impl UpdatableEngine {
    /// Live engine over `graph` with default configuration.
    pub fn new(graph: Graph) -> Self {
        Self::with_config(graph, EngineConfig::default())
    }

    /// Live engine over `graph` with explicit configuration (applied to
    /// every published snapshot's batch engine).
    pub fn with_config(graph: Graph, config: EngineConfig) -> Self {
        let dynamic = DynamicGraph::new(graph);
        let snapshot = Arc::new(Snapshot::new(
            dynamic.version(),
            Arc::new(QueryEngine::with_config(
                dynamic.graph_arc(),
                config.clone(),
            )),
            Arc::new(ReachMemo::new()),
            Vec::new(),
        ));
        UpdatableEngine {
            config,
            writer: Mutex::new(WriterState {
                dynamic,
                matchers: Vec::new(),
            }),
            current: RwLock::new(snapshot),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The current snapshot: a consistent view of the latest published
    /// graph version. An `Arc` clone under a read lock — readers never
    /// wait on in-flight update work.
    pub fn snapshot(&self) -> Arc<Snapshot> {
        Arc::clone(&self.current.read().expect("snapshot lock poisoned"))
    }

    /// The currently published graph version.
    pub fn version(&self) -> u64 {
        self.snapshot().version()
    }

    /// Register a standing PQ: evaluated once now, incrementally maintained
    /// by every subsequent [`apply`](UpdatableEngine::apply), and served
    /// from the maintained answer whenever it appears in a batch.
    pub fn register_pq(&self, pq: Pq) -> StandingId {
        let mut writer = self.writer.lock().expect("writer lock poisoned");
        let state = &mut *writer;
        let matcher = IncrementalMatcher::with_cache_capacity(
            pq.clone(),
            &state.dynamic,
            self.config.reach_cache_capacity,
        );
        let entry = StandingEntry::new(pq, matcher.match_sets().to_vec());
        state.matchers.push(matcher);
        let id = StandingId(state.matchers.len() - 1);

        // republish: same graph version, same (possibly warmed) indices,
        // one more standing answer
        let mut current = self.current.write().expect("snapshot lock poisoned");
        let mut standing = current.standing_entries().to_vec();
        standing.push(entry);
        *current = Arc::new(Snapshot::new(
            current.version(),
            current.engine_arc(),
            current.memo_arc(),
            standing,
        ));
        id
    }

    /// Apply a batch of updates and publish the next snapshot.
    ///
    /// Under the writer lock: the dynamic graph rebuilds once, every
    /// standing matcher maintains its answer from the effective updates,
    /// and the new snapshot (fresh per-version indices, refreshed standing
    /// answers) replaces the current one with a single `Arc` swap. A batch
    /// that changes nothing publishes nothing.
    ///
    /// # Errors
    ///
    /// The whole batch is validated before any of it is applied — an
    /// update naming a node the graph does not have
    /// ([`EngineError::NodeOutOfRange`]) or a wildcard edge color
    /// ([`EngineError::WildcardEdge`]) rejects the batch atomically, with
    /// the graph unchanged and no snapshot published. (The seed panicked
    /// inside the graph builder instead; a serving front-end needs the
    /// `Err`.)
    pub fn apply(&self, updates: &[Update]) -> Result<ApplyReport, EngineError> {
        let mut writer = self.writer.lock().expect("writer lock poisoned");
        let state = &mut *writer;
        let node_count = state.dynamic.graph_arc().node_count();
        for update in updates {
            let (u, v, color) = match *update {
                Update::Insert(u, v, c) | Update::Delete(u, v, c) => (u, v, c),
            };
            for node in [u, v] {
                if node.index() >= node_count {
                    return Err(EngineError::NodeOutOfRange {
                        node: node.0,
                        node_count,
                    });
                }
            }
            if color.is_wildcard() {
                return Err(EngineError::WildcardEdge);
            }
        }
        let effective = state.dynamic.apply(updates);
        if effective.is_empty() {
            return Ok(ApplyReport {
                version: state.dynamic.version(),
                applied: 0,
                snapshot: self.snapshot(),
            });
        }
        for matcher in &mut state.matchers {
            matcher.on_update(&state.dynamic, &effective);
        }
        // copy out the maintained match sets only; the full per-edge result
        // is assembled lazily by the snapshot when (and if) it is read
        let standing: Vec<StandingEntry> = state
            .matchers
            .iter()
            .map(|m| StandingEntry::new(m.pq().clone(), m.match_sets().to_vec()))
            .collect();
        let snapshot = Arc::new(Snapshot::new(
            state.dynamic.version(),
            Arc::new(QueryEngine::with_config(
                state.dynamic.graph_arc(),
                self.config.clone(),
            )),
            Arc::new(ReachMemo::new()),
            standing,
        ));
        let superseded = std::mem::replace(
            &mut *self.current.write().expect("snapshot lock poisoned"),
            Arc::clone(&snapshot),
        );
        // epoch invalidation: an index build still in flight for the old
        // version is building for nobody — readers pinning that snapshot
        // keep their (correct) search fallback, new readers get the new
        // version, so abort the stale build instead of finishing it
        superseded.engine().retire_index_builds();
        Ok(ApplyReport {
            version: snapshot.version(),
            applied: effective.len(),
            snapshot,
        })
    }

    /// The maintained answer of standing query `id` in the current
    /// snapshot.
    pub fn standing_result(&self, id: StandingId) -> Option<Arc<PqResult>> {
        self.snapshot().standing_result(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Plan, Query};
    use rpq_core::predicate::Predicate;
    use rpq_core::rq::Rq;
    use rpq_graph::gen::essembly;
    use rpq_regex::FRegex;

    fn fn_pq(g: &Graph) -> Pq {
        let mut pq = Pq::new();
        let a = pq.add_node(
            "a",
            Predicate::parse("job = \"doctor\"", g.schema()).unwrap(),
        );
        let b = pq.add_node("b", Predicate::always_true());
        pq.add_edge(a, b, FRegex::parse("fn+", g.alphabet()).unwrap());
        pq
    }

    #[test]
    fn snapshots_are_isolated_from_later_updates() {
        let engine = UpdatableEngine::new(essembly());
        let g = engine.snapshot().graph().clone();
        let rq = Rq::new(
            Predicate::parse("job = \"biologist\" && sp = \"cloning\"", g.schema()).unwrap(),
            Predicate::parse("job = \"doctor\"", g.schema()).unwrap(),
            FRegex::parse("fa^2 fn", g.alphabet()).unwrap(),
        );
        let before = engine.snapshot();
        let before_answer = before.run_query(&Query::Rq(rq.clone()));

        // delete the C3 fan-in the q1 paths rely on
        let c3 = g.node_by_label("C3").unwrap();
        let b1 = g.node_by_label("B1").unwrap();
        let b2 = g.node_by_label("B2").unwrap();
        let fnc = g.alphabet().get("fn").unwrap();
        let report = engine
            .apply(&[Update::Delete(c3, b1, fnc), Update::Delete(c3, b2, fnc)])
            .unwrap();
        assert_eq!(report.applied, 2);
        assert_eq!(report.version, 1);

        // the pinned snapshot still serves the pre-update answer
        assert_eq!(before.version(), 0);
        assert_eq!(before.run_query(&Query::Rq(rq.clone())), before_answer);
        assert_eq!(
            before_answer.as_rq().unwrap().len(),
            4,
            "paper Example 2.2 ground truth"
        );
        // the new snapshot sees the deletion
        let after = engine.snapshot();
        assert!(after.run_query(&Query::Rq(rq)).as_rq().unwrap().is_empty());
    }

    #[test]
    fn standing_pq_is_served_not_reevaluated() {
        let engine = UpdatableEngine::new(essembly());
        let g = engine.snapshot().graph().clone();
        let pq = fn_pq(&g);
        let id = engine.register_pq(pq.clone());

        let snap = engine.snapshot();
        assert_eq!(snap.standing_count(), 1);
        assert_eq!(snap.plan_query(&Query::Pq(pq.clone())), Plan::PqStanding);

        let batch = snap.run_batch(&[Query::Pq(pq.clone())]);
        assert_eq!(batch.items()[0].plan, Plan::PqStanding);
        assert_eq!(
            batch.items()[0].output.as_pq().unwrap(),
            &*snap.standing_result(id).unwrap()
        );
        // a PQ that is NOT registered still gets an evaluation plan
        let mut other = fn_pq(&g);
        other.add_node("c", Predicate::always_true());
        assert_ne!(snap.plan_query(&Query::Pq(other)), Plan::PqStanding);
    }

    #[test]
    fn standing_answer_tracks_updates() {
        let engine = UpdatableEngine::new(essembly());
        let g = engine.snapshot().graph().clone();
        let pq = fn_pq(&g);
        let id = engine.register_pq(pq.clone());
        let pinned = engine.snapshot();
        let initial = engine.standing_result(id).unwrap();
        assert!(!initial.is_empty());

        // cut every fn edge out of B1: the answer must shrink accordingly
        let b1 = g.node_by_label("B1").unwrap();
        let fnc = g.alphabet().get("fn").unwrap();
        let cuts: Vec<Update> = g
            .out_edges(b1)
            .iter()
            .filter(|e| e.color == fnc)
            .map(|e| Update::Delete(b1, e.node, fnc))
            .collect();
        assert!(!cuts.is_empty());
        let report = engine.apply(&cuts).unwrap();
        let maintained = report.snapshot.standing_result(id).unwrap();

        // reference: full evaluation on the new graph
        let mut cached = rpq_core::reach::CachedReach::with_default_capacity();
        let reference =
            rpq_core::join_match::JoinMatch::eval(&pq, report.snapshot.graph(), &mut cached);
        assert_eq!(&*maintained, &reference);
        assert_ne!(&*maintained, &*initial, "the cut must change the answer");
        // the pinned pre-update snapshot keeps serving the old answer
        assert_eq!(&*pinned.standing_result(id).unwrap(), &*initial);
    }

    #[test]
    fn noop_apply_publishes_nothing() {
        let engine = UpdatableEngine::new(essembly());
        let g = engine.snapshot().graph().clone();
        let c1 = g.node_by_label("C1").unwrap();
        let b1 = g.node_by_label("B1").unwrap();
        let fnc = g.alphabet().get("fn").unwrap();
        assert!(!g.has_edge(c1, b1, fnc));
        let before = engine.snapshot();
        let report = engine.apply(&[Update::Delete(c1, b1, fnc)]).unwrap();
        assert_eq!(report.applied, 0);
        assert_eq!(report.version, 0);
        assert!(Arc::ptr_eq(&before, &engine.snapshot()), "no new snapshot");
    }

    #[test]
    fn bad_updates_are_rejected_atomically() {
        let engine = UpdatableEngine::new(essembly());
        let g = engine.snapshot().graph().clone();
        let c1 = g.node_by_label("C1").unwrap();
        let b1 = g.node_by_label("B1").unwrap();
        let fnc = g.alphabet().get("fn").unwrap();
        let n = g.node_count();
        let ghost = rpq_graph::NodeId(n as u32);
        let before = engine.snapshot();

        // a good update followed by a bad one: nothing may apply
        let err = engine
            .apply(&[Update::Insert(c1, b1, fnc), Update::Insert(c1, ghost, fnc)])
            .unwrap_err();
        assert_eq!(
            err,
            crate::EngineError::NodeOutOfRange {
                node: n as u32,
                node_count: n
            }
        );
        assert_eq!(
            engine
                .apply(&[Update::Insert(c1, b1, rpq_graph::WILDCARD)])
                .unwrap_err(),
            crate::EngineError::WildcardEdge
        );
        // graph unchanged, no snapshot published
        assert!(Arc::ptr_eq(&before, &engine.snapshot()));
        assert!(!engine.snapshot().graph().has_edge(c1, b1, fnc));
    }

    #[test]
    fn registration_republishes_without_version_bump() {
        let engine = UpdatableEngine::new(essembly());
        let g = engine.snapshot().graph().clone();
        let v0 = engine.snapshot();
        let id = engine.register_pq(fn_pq(&g));
        let v0b = engine.snapshot();
        assert_eq!(v0b.version(), v0.version());
        assert_eq!(v0.standing_count(), 0, "pinned snapshot is immutable");
        assert_eq!(v0b.standing_count(), 1);
        assert!(v0b.standing_result(id).is_some());
        assert!(v0.standing_result(id).is_none());
    }
}
