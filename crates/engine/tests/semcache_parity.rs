//! Property-based parity for the semantic subsumption cache: answers
//! served from the cache — exact canonical hits, containment-filtered
//! subsumption hits, and everything in between — must be bit-identical
//! to uncached evaluation on every backend (matrix, hop, sharded), and
//! must never survive a live-update invalidation round.
//!
//! Each case generates a random class-F regex, a *syntactic variant* of
//! it (runs respelled, language unchanged), a *containing* regex (every
//! atom's interval widened), and a narrowed source predicate — then
//! replays the workload in an order that forces the cache through its
//! population, exact-hit and subsumption paths, comparing every answer
//! against a fresh reference evaluation.

use proptest::prelude::*;
use rpq_core::incremental::Update;
use rpq_core::predicate::Predicate;
use rpq_core::rq::Rq;
use rpq_engine::{
    EngineConfig, Query, QueryEngine, QueryService, SemanticMemo, ShardedEngine, UpdatableEngine,
};
use rpq_graph::{gen, Color, Graph, NodeId};
use rpq_regex::canon::{equivalent_canonical, runs};
use rpq_regex::{Atom, FRegex, Quant};
use std::sync::{Arc, OnceLock};

const N_NODES: usize = 120;
const N_COLORS: usize = 3;

fn graph() -> &'static Arc<Graph> {
    static G: OnceLock<Arc<Graph>> = OnceLock::new();
    G.get_or_init(|| Arc::new(gen::synthetic(N_NODES, 480, 2, N_COLORS, 11)))
}

/// The three index-backed engines, built once for every case.
struct Backends {
    matrix: QueryEngine,
    hop: QueryEngine,
    sharded: ShardedEngine,
}

fn backends() -> &'static Backends {
    static B: OnceLock<Backends> = OnceLock::new();
    B.get_or_init(|| {
        let g = graph();
        let matrix = QueryEngine::with_config(
            Arc::clone(g),
            EngineConfig::builder()
                .workers(1)
                .matrix_node_limit(10_000)
                .build()
                .unwrap(),
        );
        let hop = QueryEngine::with_config(
            Arc::clone(g),
            EngineConfig::builder()
                .workers(1)
                .matrix_node_limit(0)
                .hop_label_budget(64 << 20)
                .build()
                .unwrap(),
        );
        hop.force_hop_labels();
        let sharded = ShardedEngine::build(
            Arc::clone(g),
            EngineConfig::builder()
                .workers(1)
                .shards(3)
                .build()
                .unwrap(),
        )
        .expect("unbudgeted sharded build");
        Backends {
            matrix,
            hop,
            sharded,
        }
    })
}

fn arb_quant() -> impl Strategy<Value = Quant> {
    prop_oneof![
        3 => Just(Quant::One),
        2 => (2u32..5).prop_map(Quant::AtMost),
        1 => Just(Quant::Plus),
    ]
}

fn arb_fregex() -> impl Strategy<Value = FRegex> {
    prop::collection::vec(((0..N_COLORS as u8).prop_map(Color), arb_quant()), 1..4)
        .prop_map(|atoms| FRegex::new(atoms.into_iter().map(|(c, q)| Atom::new(c, q)).collect()))
}

/// A syntactic variant with the same language: each maximal same-color
/// run is respelled with its quantifier slack moved to a picked
/// position. `picks` drives the (deterministic) position choices.
fn respell(re: &FRegex, picks: &[usize]) -> FRegex {
    let mut atoms = Vec::new();
    for (i, run) in runs(re).into_iter().enumerate() {
        let n = run.min as usize;
        let pos = picks.get(i).copied().unwrap_or(0) % n;
        let tail = match run.max {
            None => Quant::Plus,
            Some(m) => {
                let slack = (m - run.min as u64) as u32;
                if slack == 0 {
                    Quant::One
                } else {
                    Quant::AtMost(slack + 1)
                }
            }
        };
        for j in 0..n {
            let q = if j == pos { tail } else { Quant::One };
            atoms.push(Atom::new(run.color, q));
        }
    }
    FRegex::new(atoms)
}

/// A regex whose language strictly contains `re`'s: every atom keeps its
/// minimum (one edge) and grows its maximum, so each run's interval
/// nests inside the widened run's.
fn widen(re: &FRegex) -> FRegex {
    FRegex::new(
        re.atoms()
            .iter()
            .map(|a| {
                let q = match a.quant {
                    Quant::One => Quant::AtMost(2),
                    Quant::AtMost(k) => Quant::AtMost(k + 1),
                    Quant::Plus => Quant::Plus,
                };
                Atom::new(a.color, q)
            })
            .collect(),
    )
}

fn rq_query(from: &Predicate, to: &Predicate, re: &FRegex) -> Query {
    Query::Rq(Rq::new(from.clone(), to.clone(), re.clone()))
}

/// Evaluate `q` on `svc` and assert it matches the reference BFS answer
/// on `g`.
fn assert_parity(svc: &dyn QueryService, g: &Graph, q: &Query, ctx: &str) {
    let out = svc.run_query(q);
    match q {
        Query::Rq(rq) => assert_eq!(
            out.as_rq().expect("rq output"),
            &rq.eval_bfs(g),
            "{ctx}: RQ diverged from reference"
        ),
        Query::Pq(pq) => assert_eq!(
            out.as_pq().expect("pq output"),
            &pq.eval_naive(g),
            "{ctx}: PQ diverged from reference"
        ),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The full cache lifecycle — populate from the wide query, answer
    /// the contained regex by subsumption, the respelled variant by the
    /// exact canonical key, and the narrowed predicate by filtering —
    /// yields bit-identical answers on all three backends.
    #[test]
    fn cached_answers_match_uncached_on_every_backend(
        re in arb_fregex(),
        picks in prop::collection::vec(0usize..8, 4..5),
        k in 0i64..10,
    ) {
        let g = graph().as_ref();
        let schema = g.schema();
        let variant = respell(&re, &picks);
        prop_assert!(equivalent_canonical(&re, &variant), "respell must preserve language");
        let wide_re = widen(&re);

        let from = Predicate::parse("a0 <= 7", schema).unwrap();
        let narrow = Predicate::parse(&format!("a0 <= 7 && a1 >= {k}"), schema).unwrap();
        let to = Predicate::parse(&format!("a1 >= {}", k / 2), schema).unwrap();

        let workload = [
            rq_query(&from, &to, &wide_re),  // cold: populates the cache
            rq_query(&from, &to, &re),       // contained regex: subsumption
            rq_query(&from, &to, &variant),  // respelled: exact canonical hit
            rq_query(&narrow, &to, &re),     // narrowed predicate: filtered
            rq_query(&narrow, &to, &variant),// repeat as exact hit
        ];

        let b = backends();
        for (name, svc) in [
            ("matrix", &b.matrix as &dyn QueryService),
            ("hop", &b.hop),
            ("sharded", &b.sharded),
        ] {
            // engine-level entry with an explicit persistent memo, so the
            // matrix/hop engines exercise the populate-and-serve path the
            // sharded engine gets from its own engine-lifetime memo
            let memo = SemanticMemo::persistent();
            let engine = match name {
                "matrix" => Some(&b.matrix),
                "hop" => Some(&b.hop),
                _ => None,
            };
            for q in &workload {
                for pass in ["cold", "warm"] {
                    let ctx = format!("{name}/{pass}");
                    match engine {
                        Some(e) => {
                            let out = e.run_query_with_memo(q, &memo);
                            let Query::Rq(rq) = q else { unreachable!() };
                            prop_assert_eq!(
                                out.as_rq().expect("rq output"),
                                &rq.eval_bfs(g),
                                "{}: cached RQ diverged", ctx
                            );
                        }
                        None => assert_parity(svc, g, q, &ctx),
                    }
                }
            }
            let stats = match engine {
                Some(_) => memo.semantic_stats(),
                None => b.sharded.semantic_stats(),
            };
            prop_assert!(stats.hits() > 0, "{}: workload never hit the cache", name);
        }
    }

    /// PQ parity: a pattern query and its respelled variant answer
    /// identically (and identically to naive evaluation) on every
    /// backend — minimize-before-plan must be shape-preserving.
    #[test]
    fn pq_variants_answer_identically_on_every_backend(
        re in arb_fregex(),
        picks in prop::collection::vec(0usize..8, 4..5),
        k in 0i64..10,
    ) {
        let g = graph().as_ref();
        let schema = g.schema();
        let variant = respell(&re, &picks);

        let build_pq = |edge_re: &FRegex| {
            let mut p = rpq_core::pq::Pq::new();
            let a = p.add_node(
                "a",
                Predicate::parse(&format!("a0 <= {}", 3 + k / 2), schema).unwrap(),
            );
            let b_node = p.add_node("b", Predicate::parse(&format!("a1 >= {k}"), schema).unwrap());
            p.add_edge(a, b_node, edge_re.clone());
            p
        };
        let pq = build_pq(&re);
        let pq_var = build_pq(&variant);

        let b = backends();
        for (name, svc) in [
            ("matrix", &b.matrix as &dyn QueryService),
            ("hop", &b.hop),
            ("sharded", &b.sharded),
        ] {
            assert_parity(svc, g, &Query::Pq(pq.clone()), name);
            assert_parity(svc, g, &Query::Pq(pq_var.clone()), name);
            prop_assert_eq!(
                svc.run_query(&Query::Pq(pq.clone())),
                svc.run_query(&Query::Pq(pq_var.clone())),
                "{}: PQ variant diverged from original", name
            );
        }
    }

    /// Live invalidation: cached answers never leak across an
    /// `UpdatableEngine::apply` — each published version's snapshot memo
    /// starts cold, and every post-update answer matches a reference
    /// evaluation of the *new* graph.
    #[test]
    fn cache_never_survives_an_update_round(
        re in arb_fregex(),
        picks in prop::collection::vec(0usize..8, 4..5),
        k in 0i64..10,
        edges in prop::collection::vec(
            (0..N_NODES as u32, 0..N_NODES as u32, 0..N_COLORS as u8, any::<bool>()),
            1..6,
        ),
    ) {
        let schema = graph().schema();
        let variant = respell(&re, &picks);
        let from = Predicate::parse("a0 <= 7", schema).unwrap();
        let narrow = Predicate::parse(&format!("a0 <= 7 && a1 >= {k}"), schema).unwrap();
        let to = Predicate::always_true();
        let workload = [
            rq_query(&from, &to, &widen(&re)),
            rq_query(&from, &to, &re),
            rq_query(&from, &to, &variant),
            rq_query(&narrow, &to, &variant),
        ];

        let live = UpdatableEngine::new(graph().as_ref().clone());
        for round in 0..2 {
            let snap = live.snapshot();
            let g = snap.graph();
            for q in &workload {
                // twice: the second run is served from the snapshot memo
                assert_parity(snap.as_ref(), g, q, &format!("round {round} cold"));
                assert_parity(snap.as_ref(), g, q, &format!("round {round} warm"));
            }
            let updates: Vec<Update> = edges
                .iter()
                .filter(|&&(u, v, _, _)| u != v)
                .map(|&(u, v, c, insert)| {
                    let (u, v, c) = (NodeId(u), NodeId(v), Color(c));
                    if insert ^ (round % 2 == 1) {
                        Update::Insert(u, v, c)
                    } else {
                        Update::Delete(u, v, c)
                    }
                })
                .collect();
            live.apply(&updates).expect("apply");
        }
        // after the last round, the fresh snapshot must agree with a
        // reference evaluation of the mutated graph
        let snap = live.snapshot();
        let g = snap.graph();
        for q in &workload {
            assert_parity(snap.as_ref(), g, q, "post-update");
        }
    }
}
