//! Plan-coverage suite for the explain surface: every [`Plan`] variant
//! must yield a well-formed [`QueryProfile`] — named stages with nonzero
//! spans, stage timings that sum to the profile's wall time (within 10%),
//! a rationale, and an output identical to the unprofiled path.

use rpq_engine::{EngineConfig, Plan, Query, QueryEngine, QueryProfile, UpdatableEngine};
use rpq_graph::gen::essembly;
use rpq_graph::Graph;
use std::sync::Arc;
use std::time::Duration;

fn rq(g: &Graph) -> Query {
    Query::parse_rq(
        "job = \"biologist\" && sp = \"cloning\"",
        "job = \"doctor\"",
        "fa^2 fn",
        g,
    )
    .unwrap()
}

fn pq(g: &Graph) -> Query {
    Query::parse_pq("node a: job = \"doctor\"; node b; edge a -> b: fn+", g).unwrap()
}

/// The matrix-regime engine (default config on a small graph).
fn matrix_engine() -> QueryEngine {
    QueryEngine::new(Arc::new(essembly()))
}

/// A label-regime engine: matrix disabled, single hop index forced.
fn hop_engine() -> QueryEngine {
    let config = EngineConfig::builder()
        .matrix_node_limit(0)
        .build()
        .unwrap();
    let engine = QueryEngine::with_config(Arc::new(essembly()), config);
    engine.force_hop_labels().expect("unbudgeted build fits");
    engine
}

/// A sharded-regime engine: matrix and single hop index disabled.
fn sharded_engine() -> QueryEngine {
    let config = EngineConfig::builder()
        .matrix_node_limit(0)
        .hop_label_budget(0)
        .shards(2)
        .build()
        .unwrap();
    let engine = QueryEngine::with_config(Arc::new(essembly()), config);
    engine
        .force_sharded_labels()
        .expect("unbudgeted build fits");
    engine
}

/// The well-formedness contract every profile must satisfy.
fn assert_well_formed(profile: &QueryProfile, plan: Plan) {
    assert_eq!(profile.plan, plan.name(), "profile names the driven plan");
    assert!(
        !profile.rationale.is_empty(),
        "{}: profile carries a rationale",
        plan.name()
    );
    assert!(
        profile.stages.len() >= 2,
        "{}: at least plan + eval stages, got {}",
        plan.name(),
        profile.stages.len()
    );
    for stage in &profile.stages {
        assert!(!stage.name.is_empty());
    }
    let last = profile.stages.last().unwrap();
    assert!(
        last.duration > Duration::ZERO,
        "{}: the evaluation stage span must be nonzero",
        plan.name()
    );
    assert!(profile.wall > Duration::ZERO);
    // stage timings are contiguous sub-intervals of one clock, so their
    // sum must land within 10% of the reported wall time
    let sum = profile.stage_total().as_secs_f64();
    let wall = profile.wall.as_secs_f64();
    assert!(
        (sum - wall).abs() <= 0.1 * wall,
        "{}: stage sum {sum}s vs wall {wall}s drifts past 10%",
        plan.name()
    );
    let json = profile.to_json();
    assert!(json.contains(&format!("\"plan\":\"{}\"", plan.name())));
}

/// Force `plan` on `engine`, check well-formedness and output parity
/// against the engine's own planner-chosen evaluation.
fn drive(engine: &QueryEngine, query: &Query, plan: Plan) -> QueryProfile {
    let (out, profile) = engine.run_query_with_plan_profiled(query, plan);
    assert_well_formed(&profile, plan);
    assert_eq!(
        out,
        engine.run_query(query),
        "{}: profiled output must equal the unprofiled path",
        plan.name()
    );
    assert_eq!(profile.matches, out.match_count() as u64);
    profile
}

#[test]
fn matrix_backed_plans_profile_with_probe_counts() {
    let engine = matrix_engine();
    let g = engine.graph();
    {
        let plan = Plan::RqDm;
        let p = drive(&engine, &rq(g), plan);
        assert!(p.probes > 0, "{}: DM evaluation must probe", plan.name());
    }
    for plan in [Plan::PqJoinMatrix, Plan::PqSplitMatrix] {
        let p = drive(&engine, &pq(g), plan);
        assert!(p.probes > 0, "{}: DM evaluation must probe", plan.name());
    }
}

#[test]
fn search_and_cached_plans_profile_without_probes() {
    let engine = matrix_engine();
    let g = engine.graph();
    for plan in [Plan::RqBiBfs, Plan::RqBfsMemo] {
        let p = drive(&engine, &rq(g), plan);
        assert_eq!(p.probes, 0, "{}: searches probe no index", plan.name());
    }
    for plan in [Plan::PqJoinCached, Plan::PqSplitCached] {
        let p = drive(&engine, &pq(g), plan);
        assert_eq!(
            p.probes,
            0,
            "{}: cached backend probes no index",
            plan.name()
        );
    }
}

#[test]
fn hop_backed_plans_profile_with_probe_counts() {
    let engine = hop_engine();
    let g = engine.graph();
    let p = drive(&engine, &rq(g), Plan::RqHop);
    assert!(p.probes > 0);
    for plan in [Plan::PqJoinHop, Plan::PqSplitHop] {
        let p = drive(&engine, &pq(g), plan);
        assert!(p.probes > 0, "{}: hop evaluation must probe", plan.name());
    }
}

#[test]
fn sharded_plans_profile_with_fanout() {
    let engine = sharded_engine();
    let g = engine.graph();
    for (query, plan) in [
        (rq(g), Plan::RqSharded),
        (pq(g), Plan::PqJoinSharded),
        (pq(g), Plan::PqSplitSharded),
    ] {
        let p = drive(&engine, &query, plan);
        assert!(
            p.probes > 0,
            "{}: sharded evaluation must probe",
            plan.name()
        );
        assert_eq!(p.shard_fanout, 2, "{}: fan-out = shard count", plan.name());
    }
}

#[test]
fn standing_plan_profiles_through_the_snapshot() {
    let engine = UpdatableEngine::new(essembly());
    let g = engine.snapshot().graph().clone();
    let Query::Pq(pattern) = pq(&g) else {
        unreachable!()
    };
    engine.register_pq(pattern.clone());
    let snapshot = engine.snapshot();
    let (out, profile) = snapshot.run_query_profiled(&Query::Pq(pattern.clone()));
    assert_well_formed(&profile, Plan::PqStanding);
    assert_eq!(out, snapshot.run_query(&Query::Pq(pattern)));
}

#[test]
fn planner_path_profiles_with_planner_rationale() {
    let engine = matrix_engine();
    let g = engine.graph();
    let query = rq(g);
    let (out, profile) = engine.run_query_profiled(&query);
    assert_eq!(out.match_count(), 4, "paper Example 2.2 ground truth");
    assert_eq!(profile.plan, engine.plan_query(&query).name());
    assert!(
        profile.rationale.contains("matrix"),
        "planner rationale explains the signal: {}",
        profile.rationale
    );
    assert!(profile.query.starts_with("rq: "), "{}", profile.query);
}
