//! `rpq` — command-line front end.
//!
//! ```text
//! rpq <GRAPH-FILE> pq  <QUERY-FILE> [--algo join|split] [--backend matrix|cache]
//! rpq <GRAPH-FILE> rq  "<from-pred>" "<to-pred>" "<F-regex>"
//! rpq <GRAPH-FILE> grq "<from-pred>" "<to-pred>" "<general-regex>"
//! rpq <GRAPH-FILE> min <QUERY-FILE>
//! rpq <GRAPH-FILE> stats
//! ```
//!
//! Graph files use the `rpq-graph` text format (see `rpq_graph::io`);
//! pattern-query files use the `rpq-core` query language (see
//! `rpq_core::lang`).

use rpq::core::lang::{format_pq, parse_pq};
use rpq::core::{minimize, CachedReach, GRq, JoinMatch, MatrixReach, Rq, SplitMatch};
use rpq::graph::io::read_graph;
use rpq::graph::{DistanceMatrix, Graph};
use rpq::prelude::{FRegex, Predicate};
use rpq_regex::GRegex;
use std::fs::File;
use std::io::BufReader;
use std::process::ExitCode;

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() < 2 {
        return Err(USAGE.into());
    }
    let graph_path = &args[0];
    let file = File::open(graph_path).map_err(|e| format!("cannot open {graph_path}: {e}"))?;
    let g = read_graph(&mut BufReader::new(file)).map_err(|e| e.to_string())?;

    match args[1].as_str() {
        "stats" => stats(&g),
        "rq" => rq(&g, &args[2..], false),
        "grq" => rq(&g, &args[2..], true),
        "pq" => pq(&g, &args[2..]),
        "min" => min(&g, &args[2..]),
        other => Err(format!("unknown command {other:?}\n{USAGE}")),
    }
}

const USAGE: &str = "usage: rpq <GRAPH-FILE> <stats | rq FROM TO REGEX | grq FROM TO REGEX | pq QUERY-FILE [--algo join|split] [--backend matrix|cache] | min QUERY-FILE>";

fn stats(g: &Graph) -> Result<(), String> {
    println!("nodes:  {}", g.node_count());
    println!("edges:  {}", g.edge_count());
    println!("colors: {}", g.alphabet().len());
    for c in g.alphabet().colors() {
        let count = g.edges().filter(|&(_, _, ec)| ec == c).count();
        println!("  {:<12} {count}", g.alphabet().name(c));
    }
    println!("attrs:  {}", g.schema().len());
    println!(
        "distance matrix would need {} MiB",
        DistanceMatrix::bytes_for(g) / (1 << 20)
    );
    Ok(())
}

fn rq(g: &Graph, rest: &[String], general: bool) -> Result<(), String> {
    let [from_src, to_src, regex_src] = rest else {
        return Err(format!("rq needs FROM TO REGEX\n{USAGE}"));
    };
    let from = Predicate::parse(from_src, g.schema()).map_err(|e| e.to_string())?;
    let to = Predicate::parse(to_src, g.schema()).map_err(|e| e.to_string())?;
    let result = if general {
        GRq::new(
            from,
            to,
            GRegex::parse(regex_src, g.alphabet()).map_err(|e| e.to_string())?,
        )
        .eval(g)
    } else {
        Rq::new(
            from,
            to,
            FRegex::parse(regex_src, g.alphabet()).map_err(|e| e.to_string())?,
        )
        .eval_bfs(g)
    };
    println!("{} pairs", result.len());
    for &(x, y) in result.as_slice() {
        println!("{} -> {}", g.label(x), g.label(y));
    }
    Ok(())
}

fn pq(g: &Graph, rest: &[String]) -> Result<(), String> {
    let Some(query_path) = rest.first() else {
        return Err(format!("pq needs a QUERY-FILE\n{USAGE}"));
    };
    let mut algo = "join";
    let mut backend = "matrix";
    let mut it = rest[1..].iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--algo" => algo = it.next().ok_or("--algo needs a value")?,
            "--backend" => backend = it.next().ok_or("--backend needs a value")?,
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    let text = std::fs::read_to_string(query_path)
        .map_err(|e| format!("cannot read {query_path}: {e}"))?;
    let query = parse_pq(&text, g.schema(), g.alphabet()).map_err(|e| e.to_string())?;

    let res = match (algo, backend) {
        ("join", "matrix") => {
            let m = DistanceMatrix::build(g);
            JoinMatch::eval(&query, g, &mut MatrixReach::new(&m))
        }
        ("join", "cache") => JoinMatch::eval(&query, g, &mut CachedReach::with_default_capacity()),
        ("split", "matrix") => {
            let m = DistanceMatrix::build(g);
            SplitMatch::eval(&query, g, &mut MatrixReach::new(&m))
        }
        ("split", "cache") => {
            SplitMatch::eval(&query, g, &mut CachedReach::with_default_capacity())
        }
        _ => return Err(format!("unknown algo/backend {algo:?}/{backend:?}")),
    };

    if res.is_empty() {
        println!("no match");
        return Ok(());
    }
    for u in 0..query.node_count() {
        let labels: Vec<&str> = res.node_matches(u).iter().map(|&v| g.label(v)).collect();
        println!("{}: {}", query.node(u).label, labels.join(", "));
    }
    for (ei, e) in query.edges().iter().enumerate() {
        println!(
            "edge {} -> {} ({} pairs)",
            query.node(e.from).label,
            query.node(e.to).label,
            res.edge_matches(ei).len()
        );
    }
    Ok(())
}

fn min(g: &Graph, rest: &[String]) -> Result<(), String> {
    let Some(query_path) = rest.first() else {
        return Err(format!("min needs a QUERY-FILE\n{USAGE}"));
    };
    let text = std::fs::read_to_string(query_path)
        .map_err(|e| format!("cannot read {query_path}: {e}"))?;
    let query = parse_pq(&text, g.schema(), g.alphabet()).map_err(|e| e.to_string())?;
    let slim = minimize(&query);
    eprintln!("|Q| {} -> {}", query.size(), slim.size());
    print!("{}", format_pq(&slim, g.schema(), g.alphabet()));
    Ok(())
}
