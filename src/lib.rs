//! # rpq — regular-expression reachability and graph pattern queries
//!
//! A from-scratch Rust implementation of Fan, Li, Ma, Tang & Wu,
//! *"Adding regular expressions to graph reachability and pattern queries"*
//! (ICDE 2011 / Frontiers of Computer Science 2012).
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`graph`] — the attributed, edge-colored data-graph substrate,
//! * [`regex`] — the restricted regular-expression class `F ::= c | c^k | c+ | FF`,
//! * [`index`] — the pruned landmark (2-hop) reachability-label index
//!   ([`HopLabels`](prelude::HopLabels)) and the [`DistProbe`](prelude::DistProbe)
//!   backend trait: exact per-color distance probes with memory
//!   proportional to label size, serving graphs far beyond the dense
//!   matrix's node limit,
//! * [`core`] — reachability queries (RQs), graph pattern queries (PQs),
//!   their evaluation algorithms (`JoinMatch`, `SplitMatch`, matrix and
//!   bi-directional-BFS backends), static analyses (containment,
//!   equivalence, minimization) and the paper's baselines,
//! * [`trace`] — dependency-free structured tracing and per-query
//!   profiling: a process-wide [`Tracer`](prelude::Tracer) (ring-buffered
//!   span/event log, one relaxed atomic load when disabled) and the
//!   [`QueryProfile`](prelude::QueryProfile) EXPLAIN surface every
//!   engine layer can emit,
//! * [`engine`] — the serving layer: a
//!   [`QueryEngine`](prelude::QueryEngine) that owns a shared graph,
//!   plans a strategy per query, and evaluates
//!   batches of mixed RQs/PQs on scoped worker threads with batch-wide
//!   reach-set memoization; an
//!   [`UpdatableEngine`](prelude::UpdatableEngine) serving a *mutating*
//!   graph through versioned snapshots and incrementally maintained
//!   standing queries; and a [`ShardedEngine`](prelude::ShardedEngine)
//!   serving graphs past any single-index memory budget from a
//!   partitioned [`ShardedGraph`](prelude::ShardedGraph) — per-shard
//!   label indices stitched through boundary-overlay labels
//!   ([`ShardedLabels`](prelude::ShardedLabels)), answers bit-identical
//!   to every other backend. Every entry point minimizes queries to
//!   canonical form before planning and serves repeats, respellings and
//!   *contained* queries from a semantic subsumption cache
//!   ([`SemanticMemo`](prelude::SemanticMemo)).
//!
//! ## Quickstart
//!
//! ```
//! use rpq::prelude::*;
//!
//! // Build a tiny social graph.
//! let mut b = GraphBuilder::new();
//! let job = b.attr("job");
//! let ann = b.add_node("Ann", [(job, "doctor".into())]);
//! let bob = b.add_node("Bob", [(job, "biologist".into())]);
//! let fa = b.color("fa");
//! b.add_edge(ann, bob, fa);
//! let g = b.build();
//!
//! // "doctor reaches biologist via 1..=2 fa-edges"
//! let rq = Rq::new(
//!     Predicate::parse("job = \"doctor\"", g.schema()).unwrap(),
//!     Predicate::parse("job = \"biologist\"", g.schema()).unwrap(),
//!     FRegex::parse("fa^2", g.alphabet()).unwrap(),
//! );
//! let matrix = DistanceMatrix::build(&g);
//! let result = rq.eval_with_matrix(&g, &matrix);
//! assert_eq!(result.pairs(), vec![(ann, bob)]);
//! ```
//!
//! ## Batch evaluation
//!
//! Serving many queries against one graph? Hand them to the
//! [`QueryEngine`](prelude::QueryEngine) instead of evaluating one at a
//! time: it picks a strategy per query (matrix probes, bi-directional
//! search, or memoized product BFS), shares indices and reach sets across
//! the batch, and fans the work out over scoped worker threads.
//!
//! ```
//! use std::sync::Arc;
//! use rpq::prelude::*;
//!
//! let mut b = GraphBuilder::new();
//! let job = b.attr("job");
//! let ann = b.add_node("Ann", [(job, "doctor".into())]);
//! let bob = b.add_node("Bob", [(job, "biologist".into())]);
//! let fa = b.color("fa");
//! b.add_edge(ann, bob, fa);
//! let g = Arc::new(b.build());
//!
//! let engine = QueryEngine::new(Arc::clone(&g));
//! let rq = Rq::new(
//!     Predicate::parse("job = \"doctor\"", g.schema()).unwrap(),
//!     Predicate::parse("job = \"biologist\"", g.schema()).unwrap(),
//!     FRegex::parse("fa", g.alphabet()).unwrap(),
//! );
//! // a (tiny) batch: the same API scales to thousands of mixed RQs/PQs
//! let batch = engine.run_batch(&[Query::Rq(rq.clone()), Query::Rq(rq)]);
//! for item in batch.items() {
//!     assert_eq!(item.output.as_rq().unwrap().pairs(), vec![(ann, bob)]);
//! }
//! println!("batch of {} in {:?}", batch.len(), batch.wall_time());
//! ```
//!
//! ## Live updates
//!
//! When the graph itself mutates (§7 of the paper), wrap it in an
//! [`UpdatableEngine`](prelude::UpdatableEngine): writers apply
//! [`Update`](prelude::Update) batches, readers query immutable versioned
//! [`Snapshot`](prelude::Snapshot)s, and standing PQs registered with
//! `register_pq` are incrementally maintained instead of re-evaluated.
//!
//! ```
//! use rpq::prelude::*;
//!
//! let mut b = GraphBuilder::new();
//! let job = b.attr("job");
//! let ann = b.add_node("Ann", [(job, "doctor".into())]);
//! let bob = b.add_node("Bob", [(job, "biologist".into())]);
//! let fa = b.color("fa");
//! let engine = UpdatableEngine::new(b.build());
//!
//! let rq = Rq::new(
//!     Predicate::parse("job = \"doctor\"", engine.snapshot().graph().schema()).unwrap(),
//!     Predicate::parse("job = \"biologist\"", engine.snapshot().graph().schema()).unwrap(),
//!     FRegex::parse("fa", engine.snapshot().graph().alphabet()).unwrap(),
//! );
//!
//! let before = engine.snapshot();                       // pin version 0
//! engine.apply(&[Update::Insert(ann, bob, fa)]).unwrap(); // publish version 1
//!
//! // the pinned snapshot is isolated from the update; the current one sees it
//! assert!(before.run_query(&Query::Rq(rq.clone())).as_rq().unwrap().is_empty());
//! let now = engine.snapshot().run_query(&Query::Rq(rq));
//! assert_eq!(now.as_rq().unwrap().pairs(), vec![(ann, bob)]);
//! ```

pub use rpq_core as core;
pub use rpq_engine as engine;
pub use rpq_graph as graph;
pub use rpq_index as index;
pub use rpq_regex as regex;
pub use rpq_trace as trace;

/// One-stop imports for applications.
pub mod prelude {
    pub use rpq_core::baseline::{bounded_sim_match, plain_sim_match, subiso_match};
    pub use rpq_core::grq::GRq;
    pub use rpq_core::incremental::{DynamicGraph, IncrementalMatcher, Update};
    pub use rpq_core::join_match::JoinMatch;
    pub use rpq_core::lang::{format_pq, parse_pq};
    pub use rpq_core::minimize::minimize;
    pub use rpq_core::pq::{Pq, PqResult};
    pub use rpq_core::predicate::Predicate;
    pub use rpq_core::reach::{CachedReach, MatrixReach, ProbeReach, ReachEngine};
    pub use rpq_core::rq::{Rq, RqResult};
    pub use rpq_core::split_match::SplitMatch;
    pub use rpq_engine::{
        ApplyReport, BatchItem, BatchResult, CacheKind, ConfigError, EngineConfig,
        EngineConfigBuilder, EngineError, IndexMaintenance, IndexState, Plan, Query, QueryEngine,
        QueryOutput, QueryService, ReachMemo, SemanticMemo, SemanticStats, ShardedEngine, Snapshot,
        StandingId, UpdatableEngine,
    };
    pub use rpq_graph::{
        Alphabet, AttrId, AttrValue, Attrs, Color, DistanceMatrix, Graph, GraphBuilder, NodeId,
        Partition, Schema, ShardStats, ShardedGraph, WILDCARD,
    };
    pub use rpq_index::{
        DistProbe, HopConfig, HopLabels, HopStats, ShardedConfig, ShardedLabels, ShardedStats,
    };
    pub use rpq_regex::{FRegex, GRegex};
    pub use rpq_trace::{tracer, QueryProfile, StageTiming, TraceEvent, Tracer};
}
