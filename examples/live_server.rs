//! `live_server` — demo of the live-update serving layer: one writer
//! mutating the graph, readers draining query batches against versioned
//! snapshots, and a standing PQ maintained incrementally throughout.
//!
//! Each "tick" the writer applies a batch of random edge updates (a new
//! snapshot version is published), then a reader drains a batch of RQs —
//! plus the registered standing PQ, which is served from its maintained
//! answer (`standing` plan) instead of being re-evaluated.
//!
//! ```text
//! cargo run --release --example live_server [nodes] [batch] [ticks] [updates]
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rpq::prelude::*;
use rpq_bench::querygen::{generate_pq, generate_rq, QueryParams};
use std::collections::BTreeMap;
use std::time::Instant;

fn main() {
    let mut args = std::env::args().skip(1);
    let nodes: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(3000);
    let batch_size: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(48);
    let ticks: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);
    let updates_per_tick: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(200);

    println!("building youtube-like graph with {nodes} nodes…");
    let t0 = Instant::now();
    let g = rpq::graph::gen::youtube_like(nodes, 7);
    let n_colors = g.alphabet().len() as u8;
    println!(
        "  {} nodes / {} edges in {:?}\n",
        g.node_count(),
        g.edge_count(),
        t0.elapsed()
    );

    let engine = UpdatableEngine::new(g);
    let snap0 = engine.snapshot();
    // scan a few generator seeds for a pattern with a non-empty answer, so
    // the maintained match sets have something to maintain
    let standing = (0..32)
        .map(|seed| generate_pq(snap0.graph(), &QueryParams::defaults(), seed))
        .find(|pq| {
            !snap0
                .run_query(&Query::Pq(pq.clone()))
                .as_pq()
                .unwrap()
                .is_empty()
        })
        .unwrap_or_else(|| generate_pq(snap0.graph(), &QueryParams::defaults(), 0));
    let standing_id = engine.register_pq(standing.clone());
    println!(
        "registered standing PQ ({} nodes / {} edges), initial answer size {}\n",
        standing.node_count(),
        standing.edge_count(),
        engine.standing_result(standing_id).unwrap().size(),
    );

    let mut rng = StdRng::seed_from_u64(99);
    for tick in 0..ticks {
        // writer: a batch of random insertions/deletions, one rebuild
        let updates: Vec<Update> = (0..updates_per_tick)
            .map(|_| {
                let x = NodeId(rng.gen_range(0..nodes as u32));
                let y = NodeId(rng.gen_range(0..nodes as u32));
                let c = Color(rng.gen_range(0..n_colors));
                if rng.gen_bool(0.5) {
                    Update::Insert(x, y, c)
                } else {
                    Update::Delete(x, y, c)
                }
            })
            .collect();
        let t = Instant::now();
        let report = engine.apply(&updates).unwrap();
        let apply_time = t.elapsed();

        // reader: drain this tick's queue against the freshly published
        // snapshot — RQ traffic with hot keys, plus the standing PQ
        let snap = report.snapshot;
        let queries: Vec<Query> = (0..batch_size)
            .map(|i| {
                if i % 8 == 7 {
                    Query::Pq(standing.clone())
                } else if i % 4 == 0 {
                    Query::Rq(generate_rq(snap.graph(), 2, 4, 2, (i % 8) as u64))
                } else {
                    Query::Rq(generate_rq(
                        snap.graph(),
                        2,
                        4,
                        2,
                        1000 + (tick * batch_size + i) as u64,
                    ))
                }
            })
            .collect();
        let result = snap.run_batch(&queries);

        let mut per_plan: BTreeMap<&'static str, usize> = BTreeMap::new();
        for item in result.items() {
            *per_plan.entry(item.plan.name()).or_insert(0) += 1;
        }
        let (hits, misses) = result.memo_stats();
        let wall = result.wall_time();
        println!(
            "tick {tick}: v{} ({}/{} updates applied in {apply_time:?}), {} queries in {wall:?} ({:.0} q/s)",
            snap.version(),
            report.applied,
            updates.len(),
            result.len(),
            result.len() as f64 / wall.as_secs_f64(),
        );
        println!(
            "  plans: {per_plan:?}  memo: {hits} hits / {misses} misses  standing answer: {} matches",
            snap.standing_result(standing_id).unwrap().size(),
        );
    }
}
