//! Fig. 9(a), left side: pattern query Q1 on a YouTube-like video network
//! (a seeded stand-in for the paper's crawl — see DESIGN.md
//! "Substitutions"), plus the minimization workflow of Exp-2.
//!
//! Run with: `cargo run --release --example youtube`

use rpq::prelude::*;
use std::time::Instant;

fn main() {
    let g = rpq::graph::gen::youtube_like(3000, 7);
    println!(
        "YouTube-like network: {} videos, {} recommendation/reference edges",
        g.node_count(),
        g.edge_count()
    );

    // Fig. 9(a)'s Q1 shape: Film & Animation videos with active comments,
    // related to videos of one uploader via friends references (fr) or
    // recommendations (fc), which in turn relate to high-view videos.
    let mut pq = Pq::new();
    let a = pq.add_node(
        "A",
        Predicate::parse(
            "cat = \"Film & Animation\" && com > 20 && age > 300",
            g.schema(),
        )
        .unwrap(),
    );
    let bnode = pq.add_node("B", Predicate::parse("uid <= 30", g.schema()).unwrap());
    let c = pq.add_node(
        "C",
        Predicate::parse("cat = \"Music\" && len > 4 && age > 600", g.schema()).unwrap(),
    );
    let d = pq.add_node("D", Predicate::parse("view > 160000", g.schema()).unwrap());
    let re = |s: &str| FRegex::parse(s, g.alphabet()).unwrap();
    pq.add_edge(a, bnode, re("fr^5 fc"));
    pq.add_edge(bnode, c, re("sr^6 fr"));
    pq.add_edge(bnode, d, re("_+"));
    pq.add_edge(c, d, re("sr^5 fr"));

    let t0 = Instant::now();
    let matrix = DistanceMatrix::build(&g);
    println!(
        "distance matrix built in {:.2?} ({} MB)",
        t0.elapsed(),
        DistanceMatrix::bytes_for(&g) / (1 << 20)
    );

    let t1 = Instant::now();
    let res = JoinMatch::eval(&pq, &g, &mut MatrixReach::new(&matrix));
    println!("JoinMatchM evaluated Q1 in {:.2?}", t1.elapsed());
    if res.is_empty() {
        println!("no matches — try another seed");
    } else {
        for (u, lbl) in [(a, "A"), (bnode, "B"), (c, "C"), (d, "D")] {
            println!("  {lbl}: {} matching videos", res.node_matches(u).len());
        }
        println!("  Σ|Se| = {}", res.size());
    }

    // ---- Exp-2 workflow: minimize, then evaluate the smaller query -----
    // blow the query up with equivalent duplicate branches
    let mut fat = pq.clone();
    let b2 = fat.add_node("B'", Predicate::parse("uid <= 30", g.schema()).unwrap());
    fat.add_edge(a, b2, re("fr^5 fc"));
    fat.add_edge(b2, c, re("sr^6 fr"));
    fat.add_edge(b2, d, re("_+"));
    let t2 = Instant::now();
    let slim = minimize(&fat);
    let t_min = t2.elapsed();
    println!(
        "\nminPQs: |Q| {} -> {} in {t_min:.2?} (equivalent: {})",
        fat.size(),
        slim.size(),
        rpq::core::pq_equivalent(&slim, &fat)
    );

    let t3 = Instant::now();
    let res_fat = JoinMatch::eval(&fat, &g, &mut MatrixReach::new(&matrix));
    let t_fat = t3.elapsed();
    let t4 = Instant::now();
    let res_slim = JoinMatch::eval(&slim, &g, &mut MatrixReach::new(&matrix));
    let t_slim = t4.elapsed();
    println!("evaluating the original took {t_fat:.2?}, the minimized {t_slim:.2?}");
    // the surviving A-class node has the same matches
    let slim_a = (0..slim.node_count())
        .find(|&u| slim.node(u).label.starts_with('A'))
        .expect("A-class node survives minimization");
    assert_eq!(res_fat.node_matches(a), res_slim.node_matches(slim_a));
}
