//! Quickstart: build a small typed-edge graph, run a reachability query
//! (RQ) and a pattern query (PQ), and minimize a redundant pattern.
//!
//! Run with: `cargo run --example quickstart`

use rpq::prelude::*;

fn main() {
    // ---- build a data graph --------------------------------------------
    // A tiny collaboration network: researchers advise (ad) and cite (ci)
    // each other; some co-author (co).
    let mut b = GraphBuilder::new();
    let field = b.attr("field");
    let hindex = b.attr("h");
    let mk = |b: &mut GraphBuilder, name: &str, f: &str, h: i64| {
        b.add_node(name, [(field, f.into()), (hindex, h.into())])
    };
    let ada = mk(&mut b, "Ada", "databases", 60);
    let bob = mk(&mut b, "Bob", "databases", 25);
    let cat = mk(&mut b, "Cat", "systems", 40);
    let dan = mk(&mut b, "Dan", "theory", 15);
    let eve = mk(&mut b, "Eve", "databases", 8);

    let ad = b.color("ad");
    let ci = b.color("ci");
    let co = b.color("co");
    b.add_edge(ada, bob, ad); // Ada advises Bob
    b.add_edge(bob, eve, ad); // Bob advises Eve
    b.add_edge(eve, cat, ci); // Eve cites Cat
    b.add_edge(cat, dan, ci);
    b.add_edge(bob, cat, co); // Bob co-authors with Cat
    b.add_edge(cat, bob, co);
    b.add_edge(dan, ada, ci);
    let g = b.build();
    println!(
        "graph: {} nodes, {} edges, {} edge types",
        g.node_count(),
        g.edge_count(),
        g.alphabet().len()
    );

    // ---- a reachability query ------------------------------------------
    // "Which senior database researchers reach a systems person through at
    //  most two advisement hops followed by one citation?"
    let rq = Rq::new(
        Predicate::parse("field = \"databases\" && h >= 25", g.schema()).unwrap(),
        Predicate::parse("field = \"systems\"", g.schema()).unwrap(),
        FRegex::parse("ad^2 ci", g.alphabet()).unwrap(),
    );
    let matrix = DistanceMatrix::build(&g);
    let result = rq.eval_with_matrix(&g, &matrix);
    println!("\nRQ  (ad^2 ci):");
    for (x, y) in result.pairs() {
        println!("  {} -> {}", g.label(x), g.label(y));
    }
    // the three strategies agree
    assert_eq!(result, rq.eval_bfs(&g));
    assert_eq!(result, rq.eval_bibfs(&g));

    // ---- a pattern query -------------------------------------------------
    // A triangle: an advisor (databases) whose student co-authors with a
    // systems person, who in turn cites back into databases.
    let mut pq = Pq::new();
    let advisor = pq.add_node(
        "advisor",
        Predicate::parse("field = \"databases\" && h >= 25", g.schema()).unwrap(),
    );
    let student = pq.add_node(
        "student",
        Predicate::parse("field = \"databases\"", g.schema()).unwrap(),
    );
    let sys = pq.add_node(
        "sys",
        Predicate::parse("field = \"systems\"", g.schema()).unwrap(),
    );
    pq.add_edge(
        advisor,
        student,
        FRegex::parse("ad^2", g.alphabet()).unwrap(),
    );
    pq.add_edge(student, sys, FRegex::parse("co", g.alphabet()).unwrap());
    pq.add_edge(sys, student, FRegex::parse("co", g.alphabet()).unwrap());

    let res = JoinMatch::eval(&pq, &g, &mut MatrixReach::new(&matrix));
    println!("\nPQ matches (JoinMatch, matrix backend):");
    for (u, name) in [(advisor, "advisor"), (student, "student"), (sys, "sys")] {
        let labels: Vec<&str> = res.node_matches(u).iter().map(|&v| g.label(v)).collect();
        println!("  {name}: {labels:?}");
    }
    // SplitMatch and the cached backend give the same answer
    let res2 = SplitMatch::eval(&pq, &g, &mut CachedReach::with_default_capacity());
    assert_eq!(res, res2);

    // ---- minimization ----------------------------------------------------
    // Add a redundant twin of the student node: minPQs folds it away.
    let mut fat = pq.clone();
    let twin = fat.add_node(
        "student-twin",
        Predicate::parse("field = \"databases\"", g.schema()).unwrap(),
    );
    fat.add_edge(advisor, twin, FRegex::parse("ad^2", g.alphabet()).unwrap());
    fat.add_edge(twin, sys, FRegex::parse("co", g.alphabet()).unwrap());
    fat.add_edge(sys, twin, FRegex::parse("co", g.alphabet()).unwrap());
    let slim = minimize(&fat);
    println!(
        "\nminimize: |Q| {} -> {} (equivalent: {})",
        fat.size(),
        slim.size(),
        rpq::core::pq_equivalent(&slim, &fat)
    );
    assert!(slim.size() < fat.size());
}
