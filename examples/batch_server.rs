//! `batch_server` — demo of the parallel batch query engine as the core of
//! a query-serving process.
//!
//! Simulates a server draining a queue of mixed RQ/PQ traffic against one
//! shared graph: each "tick" collects a batch, hands it to the
//! [`QueryEngine`], and reports throughput, per-plan counts and memo
//! efficiency.
//!
//! ```text
//! cargo run --release --example batch_server [nodes] [batch] [ticks]
//! ```

use rpq::prelude::*;
use rpq_bench::querygen::{generate_pq, generate_rq, QueryParams};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let mut args = std::env::args().skip(1);
    let nodes: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(3000);
    let batch_size: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(64);
    let ticks: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);

    println!("building youtube-like graph with {nodes} nodes…");
    let t0 = Instant::now();
    let g = Arc::new(rpq::graph::gen::youtube_like(nodes, 7));
    println!(
        "  {} nodes / {} edges in {:?}\n",
        g.node_count(),
        g.edge_count(),
        t0.elapsed()
    );

    let engine = QueryEngine::new(Arc::clone(&g));
    println!(
        "engine: {} workers (0 = one per core), matrix {} (limit {})\n",
        engine.config().workers,
        if engine.matrix_available() {
            "available"
        } else {
            "skipped"
        },
        engine.config().matrix_node_limit,
    );

    let pq_params = QueryParams::defaults();
    for tick in 0..ticks {
        // drain this tick's queue: 3/4 RQs (some repeating hot keys), 1/4 PQs
        let queries: Vec<Query> = (0..batch_size)
            .map(|i| {
                let seed = (tick * batch_size + i) as u64;
                if i % 4 == 3 {
                    Query::Pq(generate_pq(&g, &pq_params, seed))
                } else if i % 4 == 0 {
                    // hot key: repeats across the batch and across ticks
                    Query::Rq(generate_rq(&g, 2, 4, 2, (i % 8) as u64))
                } else {
                    Query::Rq(generate_rq(&g, 2, 4, 2, 1000 + seed))
                }
            })
            .collect();

        let result = engine.run_batch(&queries);

        let mut per_plan: BTreeMap<&'static str, usize> = BTreeMap::new();
        for item in result.items() {
            *per_plan.entry(item.plan.name()).or_insert(0) += 1;
        }
        let (hits, misses) = result.memo_stats();
        let wall = result.wall_time();
        let qps = result.len() as f64 / wall.as_secs_f64();
        println!(
            "tick {tick}: {:3} queries on {} workers in {wall:?} ({qps:.0} q/s, {:.1}x vs sequential)",
            result.len(),
            result.workers(),
            result.total_query_time().as_secs_f64() / wall.as_secs_f64(),
        );
        println!(
            "  plans: {per_plan:?}  memo: {hits} hits / {misses} misses  matches: {}",
            result
                .items()
                .iter()
                .map(|i| i.output.match_count())
                .sum::<usize>(),
        );
    }
}
