//! `sharded_cluster` — the partitioned stack end to end: shard a
//! clustered graph, build per-shard labels plus the boundary overlay,
//! and serve a mixed RQ/PQ batch under `sharded` / `JoinMatch/sharded`
//! plans, cross-checked against the unsharded hop backend.
//!
//! ```text
//! cargo run --release --example sharded_cluster [nodes] [shards] [batch]
//! ```

use rpq::prelude::*;
use std::sync::Arc;
use std::time::Instant;

fn workload(g: &Graph, batch: usize) -> Vec<Query> {
    (0..batch)
        .map(|i| {
            let from =
                Predicate::parse(&format!("a0 = {} && a1 >= 6", i % 10), g.schema()).unwrap();
            let to = Predicate::parse(&format!("a1 <= {}", 3 + i % 3), g.schema()).unwrap();
            if i % 4 == 3 {
                let mut pq = Pq::new();
                let a = pq.add_node("a", from);
                let b = pq.add_node("b", to);
                pq.add_edge(a, b, FRegex::parse("c0^2 c1", g.alphabet()).unwrap());
                Query::Pq(pq)
            } else {
                let res = ["c0^2 c1", "c1^3", "_^3", "c0 c1^2"];
                Query::Rq(Rq::new(
                    from,
                    to,
                    FRegex::parse(res[i % res.len()], g.alphabet()).unwrap(),
                ))
            }
        })
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let nodes: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(30_000);
    let shards: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(4);
    let batch: usize = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(32);

    println!("generating a {nodes}-node clustered graph ({shards} communities)...");
    let g = Arc::new(rpq::graph::gen::clustered(
        nodes,
        nodes * 4,
        shards,
        2,
        3,
        3,
        42,
    ));

    let t0 = Instant::now();
    let engine = ShardedEngine::build(
        Arc::clone(&g),
        EngineConfig::builder().shards(shards).build().unwrap(),
    )
    .expect("unbudgeted build cannot fail");
    let stats = engine.stats();
    println!("sharded build in {:.2?}: {stats}", t0.elapsed());
    println!(
        "  per-shard label KiB: {:?} (total {} KiB incl. overlay)",
        stats
            .shard_bytes
            .iter()
            .map(|b| b / 1024)
            .collect::<Vec<_>>(),
        stats.total_bytes() / 1024
    );

    let queries = workload(&g, batch);
    let t1 = Instant::now();
    let out = engine.run_batch(&queries);
    println!(
        "batch of {} in {:.2?} on {} workers:",
        out.len(),
        t1.elapsed(),
        out.workers()
    );
    let mut by_plan: std::collections::BTreeMap<&str, usize> = Default::default();
    for item in out.items() {
        *by_plan.entry(item.plan.name()).or_default() += 1;
    }
    for (plan, count) in by_plan {
        println!("  {count:3} × {plan}");
    }

    // cross-check a few answers against the unsharded hop backend
    let reference = QueryEngine::with_config(
        Arc::clone(&g),
        EngineConfig::builder()
            .matrix_node_limit(0)
            .build()
            .unwrap(),
    );
    reference.force_hop_labels().expect("fits default budget");
    let ref_out = reference.run_batch(&queries);
    let agree = out
        .items()
        .iter()
        .zip(ref_out.items())
        .all(|(s, h)| s.output == h.output);
    println!(
        "answers vs unsharded hop backend: {}",
        if agree {
            "identical"
        } else {
            "DIVERGED (bug!)"
        }
    );
    assert!(agree);
}
