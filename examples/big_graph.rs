//! `big_graph` — serving RQs *and PQs* on a graph far beyond the matrix
//! node limit.
//!
//! Demonstrates the hop-label subsystem end to end: generate (or load) a
//! large 4-color graph, watch the first batch fall back to search while
//! the label index builds in the background, then watch later batches
//! switch to `hop` / `JoinMatch/hop` plans and report the speedup. One
//! query in eight is a pattern query, so the tick lines show both query
//! classes flipping off their fallbacks at once.
//!
//! ```text
//! cargo run --release --example big_graph [nodes] [batch] [ticks]
//! cargo run --release --example big_graph --edge-list FILE [batch] [ticks]
//! ```
//!
//! With `--edge-list`, FILE is a SNAP-style `FROM TO [COLOR]` text file
//! (see `Graph::from_edge_list`), so public datasets drop straight in.

use rpq::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn workload(g: &Graph, batch: usize, tick: usize) -> Vec<Query> {
    let names: Vec<String> = g
        .alphabet()
        .colors()
        .map(|c| g.alphabet().name(c).to_owned())
        .collect();
    let attrs: Vec<String> = (0..g.schema().len())
        .map(|i| g.schema().name(AttrId(i as u16)).to_owned())
        .collect();
    (0..batch)
        .map(|i| {
            let k = tick * batch + i;
            let a = &names[k % names.len()];
            let b = &names[(k / names.len() + 1) % names.len()];
            let re = format!("{a}^2 {b}");
            let (from, to) = if attrs.is_empty() {
                (Predicate::always_true(), Predicate::always_true())
            } else {
                (
                    Predicate::parse(
                        &format!("{} >= {}", attrs[k % attrs.len()], (k % 40) as i64),
                        g.schema(),
                    )
                    .unwrap(),
                    Predicate::always_true(),
                )
            };
            if i % 8 == 7 && !attrs.is_empty() {
                // every 8th query: a 2-node pattern — the PQ side of the
                // fallback→hop flip. Endpoints are *selective* (equality on
                // a sampled node's first attribute): while this tick still
                // serves the cached fallback, refinement cost scales with
                // the candidate sets, and an unselective pattern on a big
                // graph would stall the demo before the index ever landed.
                let sample = |j: usize| {
                    let v = NodeId(((j * 7919) % g.node_count()) as u32);
                    let attr = AttrId(0);
                    match g.attrs(v).get(attr) {
                        Some(AttrValue::Int(n)) => {
                            Predicate::parse(&format!("{} = {n}", attrs[0]), g.schema()).unwrap()
                        }
                        _ => Predicate::always_true(),
                    }
                };
                let mut pq = Pq::new();
                let x = pq.add_node("x", sample(k));
                let y = pq.add_node("y", sample(k + 1));
                pq.add_edge(x, y, FRegex::parse(&re, g.alphabet()).unwrap());
                Query::Pq(pq)
            } else {
                Query::Rq(Rq::new(from, to, FRegex::parse(&re, g.alphabet()).unwrap()))
            }
        })
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (g, rest) = if args.first().map(String::as_str) == Some("--edge-list") {
        let path = args.get(1).expect("--edge-list needs a FILE");
        let text = std::fs::read_to_string(path).expect("readable edge list");
        let g = Graph::from_edge_list(&text).expect("parsable edge list");
        println!(
            "loaded {} nodes / {} edges from {path}",
            g.node_count(),
            g.edge_count()
        );
        (g, &args[2..])
    } else {
        let nodes: usize = args.first().and_then(|a| a.parse().ok()).unwrap_or(50_000);
        println!("generating youtube-like graph with {nodes} nodes…");
        (rpq::graph::gen::youtube_like(nodes, 42), &args[1..])
    };
    let batch: usize = rest.first().and_then(|a| a.parse().ok()).unwrap_or(64);
    let ticks: usize = rest.get(1).and_then(|a| a.parse().ok()).unwrap_or(6);
    let g = Arc::new(g);

    let engine = QueryEngine::new(Arc::clone(&g));
    println!(
        "matrix: {} (limit {}, would need {:.1} GiB); hop-label budget {} MiB\n",
        if engine.matrix_available() {
            "available"
        } else {
            "over limit"
        },
        engine.config().matrix_node_limit,
        DistanceMatrix::bytes_for(&g) as f64 / (1 << 30) as f64,
        engine.config().hop_label_budget >> 20,
    );

    for tick in 0..ticks {
        let queries = workload(&g, batch, tick);
        let t0 = Instant::now();
        let result = engine.run_batch(&queries);
        let wall = t0.elapsed();
        let mut per_plan: BTreeMap<&'static str, usize> = BTreeMap::new();
        for item in result.items() {
            *per_plan.entry(item.plan.name()).or_insert(0) += 1;
        }
        println!(
            "tick {tick}: {} queries in {wall:?} ({:.0} q/s)  plans: {per_plan:?}  matches: {}",
            result.len(),
            result.len() as f64 / wall.as_secs_f64(),
            result
                .items()
                .iter()
                .map(|i| i.output.match_count())
                .sum::<usize>(),
        );
        if let Some(labels) = engine.hop_labels() {
            if tick == 0 || per_plan.contains_key("hop") {
                println!("  index: {}", labels.stats());
            }
        } else if !engine.matrix_available() {
            println!("  index: hop-label build in flight, serving search fallback");
            // give the background build a moment before the next tick, so
            // the demo visibly flips from fallback to hop plans
            std::thread::sleep(Duration::from_millis(500));
        }
    }
}
