//! Fig. 9(a), right side: pattern query Q2 on the terrorist-organization
//! collaboration network (a seeded stand-in for the paper's GTD-derived
//! graph — see DESIGN.md "Substitutions").
//!
//! The query anchors on the planted "Hamas" organization and looks for
//! collaboration triangles through international (`ic`) and domestic
//! (`dc`) collaboration chains.
//!
//! Run with: `cargo run --release --example terrorism`

use rpq::prelude::*;

fn main() {
    let g = rpq::graph::gen::terrorism_like(42);
    println!(
        "terrorist-organization network: {} orgs, {} collaboration edges",
        g.node_count(),
        g.edge_count()
    );

    // Fig. 9(a)'s Q2 shape: a named anchor plus organizations related via
    // ic^2 dc+ / ic^2 / dc+ chains, with target/attack-type conditions.
    let mut pq = Pq::new();
    let a = pq.add_node("A", Predicate::parse("gn = \"Hamas\"", g.schema()).unwrap());
    let bnode = pq.add_node(
        "B",
        Predicate::parse("tt = \"Business\"", g.schema()).unwrap(),
    );
    let c = pq.add_node(
        "C",
        Predicate::parse("tt = \"Military\"", g.schema()).unwrap(),
    );
    let re = |s: &str| FRegex::parse(s, g.alphabet()).unwrap();
    pq.add_edge(bnode, a, re("ic^2 dc+"));
    pq.add_edge(c, a, re("ic+"));
    pq.add_edge(bnode, c, re("_^3"));

    let matrix = DistanceMatrix::build(&g);
    let res = JoinMatch::eval(&pq, &g, &mut MatrixReach::new(&matrix));
    let gn = g.schema().get("gn").unwrap();
    let name = |v: rpq::graph::NodeId| match g.attrs(v).get(gn) {
        Some(rpq::graph::AttrValue::Str(s)) => s.clone(),
        _ => g.label(v).to_owned(),
    };

    if res.is_empty() {
        println!("no matches — try another seed");
        return;
    }
    println!("\nmatches:");
    for (u, lbl) in [
        (a, "A (anchor)"),
        (bnode, "B (armed assault/business)"),
        (c, "C (bombing/military)"),
    ] {
        let names: Vec<String> = res
            .node_matches(u)
            .iter()
            .take(8)
            .map(|&v| name(v))
            .collect();
        println!(
            "  {lbl}: {} orgs, e.g. {}",
            res.node_matches(u).len(),
            names.join(", ")
        );
    }
    println!("\nedge match counts (Σ|Se| = {}):", res.size());
    for (ei, e) in pq.edges().iter().enumerate() {
        println!(
            "  ({} -> {} via {}): {}",
            pq.node(e.from).label,
            pq.node(e.to).label,
            e.regex.display(g.alphabet()),
            res.edge_matches(ei).len()
        );
    }

    // contrast with the color-blind bounded-simulation baseline
    let relaxed = rpq::core::baseline::bounded_sim_match(&pq, &g, &mut MatrixReach::new(&matrix));
    println!(
        "\nbounded simulation (Match, colors ignored) finds {} edge matches — {}x the PQ's, most of them spurious",
        relaxed.size(),
        if res.size() > 0 { relaxed.size() / res.size().max(1) } else { 0 }
    );
}
