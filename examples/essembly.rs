//! The paper's running example (Fig. 1): the Essembly debate network,
//! query Q1 (an RQ) and query Q2 (a PQ), reproducing Examples 2.2 and 2.3.
//!
//! Run with: `cargo run --example essembly`

use rpq::prelude::*;

fn main() {
    let g = rpq::graph::gen::essembly();
    println!(
        "Essembly network (Fig. 1): {} people, {} relationships",
        g.node_count(),
        g.edge_count()
    );
    for v in g.nodes() {
        let attrs: Vec<String> = g
            .attrs(v)
            .iter()
            .map(|(id, val)| format!("{} = {}", g.schema().name(id), val))
            .collect();
        println!("  {}: {}", g.label(v), attrs.join(", "));
    }

    // ---- Q1: an RQ (Example 2.2) ---------------------------------------
    // biologists supporting cloning who reach, via at most two
    // friends-allies hops then one friends-nemeses edge, some doctor
    let q1 = Rq::new(
        Predicate::parse("job = \"biologist\" && sp = \"cloning\"", g.schema()).unwrap(),
        Predicate::parse("job = \"doctor\"", g.schema()).unwrap(),
        FRegex::parse("fa^2 fn", g.alphabet()).unwrap(),
    );
    let matrix = DistanceMatrix::build(&g);
    let r1 = q1.eval_with_matrix(&g, &matrix);
    println!("\nQ1 = (C, B, fa^2 fn). Q1(G):");
    for (x, y) in r1.pairs() {
        println!("  ({}, {})", g.label(x), g.label(y));
    }
    // Example 2.2's table
    let n = |l: &str| g.node_by_label(l).unwrap();
    assert_eq!(
        r1.pairs(),
        vec![
            (n("C1"), n("B1")),
            (n("C1"), n("B2")),
            (n("C2"), n("B1")),
            (n("C2"), n("B2")),
        ]
    );

    // ---- Q2: a PQ (Example 2.3) ------------------------------------------
    let mut q2 = Pq::new();
    let b = q2.add_node(
        "B",
        Predicate::parse("job = \"doctor\" && dsp = \"cloning\"", g.schema()).unwrap(),
    );
    let c = q2.add_node(
        "C",
        Predicate::parse("job = \"biologist\" && sp = \"cloning\"", g.schema()).unwrap(),
    );
    let d = q2.add_node(
        "D",
        Predicate::parse("uid = \"Alice001\"", g.schema()).unwrap(),
    );
    let re = |s: &str| FRegex::parse(s, g.alphabet()).unwrap();
    let edges = [
        (b, c, "fn"),
        (c, b, "fn"),
        (c, c, "fa+"),
        (b, d, "fn"),
        (c, d, "fa^2 sa^2"),
    ];
    for &(u, v, r) in &edges {
        q2.add_edge(u, v, re(r));
    }

    let res = JoinMatch::eval(&q2, &g, &mut MatrixReach::new(&matrix));
    println!("\nQ2(G) per edge (Example 2.3's table):");
    for (ei, &(u, v, r)) in edges.iter().enumerate() {
        let pairs: Vec<String> = res
            .edge_matches(ei)
            .iter()
            .map(|&(x, y)| format!("({}, {})", g.label(x), g.label(y)))
            .collect();
        println!(
            "  ({}, {}) via {:<9}: {}",
            q2.node(u).label,
            q2.node(v).label,
            r,
            pairs.join(", ")
        );
    }
    // the (C,D) subtlety of Example 2.3: C1 has a qualifying path to D1 but
    // is still not a match, because it fails the (C,B) constraint
    let c1 = n("C1");
    assert!(!res.node_matches(c).contains(&c1));
    // all three evaluation routes agree
    assert_eq!(
        res,
        SplitMatch::eval(&q2, &g, &mut MatrixReach::new(&matrix))
    );
    assert_eq!(
        res,
        JoinMatch::eval(&q2, &g, &mut CachedReach::with_default_capacity())
    );
    println!("\nJoinMatch (matrix), SplitMatch (matrix) and JoinMatch (cache) agree.");
}
