//! Export a generated dataset in the `rpq-graph` text format, for use with
//! the `rpq` CLI.
//!
//! ```text
//! cargo run --example export_graph -- essembly           > essembly.graph
//! cargo run --example export_graph -- terrorism 42       > gtd.graph
//! cargo run --example export_graph -- youtube 3000 7     > youtube.graph
//! cargo run --example export_graph -- synthetic 1000 4000 3 4 1 > syn.graph
//! ```

use rpq::graph::gen;
use rpq::graph::io::write_graph;
use std::io::{self, Write};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let arg = |i: usize, default: u64| -> u64 {
        args.get(i).and_then(|s| s.parse().ok()).unwrap_or(default)
    };
    let g = match args.first().map(String::as_str) {
        Some("essembly") | None => gen::essembly(),
        Some("terrorism") => gen::terrorism_like(arg(1, 42)),
        Some("youtube") => gen::youtube_like(arg(1, 3000) as usize, arg(2, 7)),
        Some("synthetic") => gen::synthetic(
            arg(1, 1000) as usize,
            arg(2, 4000) as usize,
            arg(3, 3) as usize,
            arg(4, 4) as usize,
            arg(5, 1),
        ),
        Some(other) => {
            eprintln!("unknown dataset {other:?} (essembly|terrorism|youtube|synthetic)");
            std::process::exit(2);
        }
    };
    let stdout = io::stdout();
    let mut lock = io::BufWriter::new(stdout.lock());
    write_graph(&g, &mut lock).expect("write to stdout");
    lock.flush().expect("flush stdout");
}
