//! Randomized cross-validation spanning all three crates: on seeded
//! synthetic graphs, every PQ evaluation route (JoinMatch/SplitMatch ×
//! matrix/cache) must equal the naive fixpoint semantics, and every RQ
//! strategy must agree.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rpq::prelude::*;

fn random_pattern(g: &Graph, rng: &mut StdRng, max_nodes: usize) -> Pq {
    let mut pq = Pq::new();
    let n_nodes = rng.gen_range(2..=max_nodes);
    for i in 0..n_nodes {
        let pred = match rng.gen_range(0..3) {
            0 => Predicate::always_true(),
            1 => Predicate::parse(&format!("a0 <= {}", rng.gen_range(2..9)), g.schema()).unwrap(),
            _ => Predicate::parse(
                &format!(
                    "a0 >= {} && a1 != {}",
                    rng.gen_range(0..5),
                    rng.gen_range(0..10)
                ),
                g.schema(),
            )
            .unwrap(),
        };
        pq.add_node(&format!("u{i}"), pred);
    }
    let pool = [
        "c0",
        "c1",
        "c0^2",
        "c1^3",
        "c0+",
        "c0 c1",
        "c1^2 c0^2",
        "_^2",
        "_+",
        "_ c0",
    ];
    for _ in 0..rng.gen_range(1..=n_nodes + 2) {
        let u = rng.gen_range(0..n_nodes);
        let v = rng.gen_range(0..n_nodes);
        let r = pool[rng.gen_range(0..pool.len())];
        pq.add_edge(u, v, FRegex::parse(r, g.alphabet()).unwrap());
    }
    pq
}

#[test]
fn pq_routes_agree_with_semantics() {
    let mut rng = StdRng::seed_from_u64(2024);
    for trial in 0..10u64 {
        let g = rpq::graph::gen::synthetic(50, 170, 2, 2, 7000 + trial);
        let m = DistanceMatrix::build(&g);
        let pq = random_pattern(&g, &mut rng, 4);
        let oracle = pq.eval_naive(&g);
        assert_eq!(
            JoinMatch::eval(&pq, &g, &mut MatrixReach::new(&m)),
            oracle,
            "JoinMatchM trial {trial}"
        );
        assert_eq!(
            JoinMatch::eval(&pq, &g, &mut CachedReach::new(1 << 14)),
            oracle,
            "JoinMatchC trial {trial}"
        );
        assert_eq!(
            SplitMatch::eval(&pq, &g, &mut MatrixReach::new(&m)),
            oracle,
            "SplitMatchM trial {trial}"
        );
        assert_eq!(
            SplitMatch::eval(&pq, &g, &mut CachedReach::new(1 << 14)),
            oracle,
            "SplitMatchC trial {trial}"
        );
    }
}

#[test]
fn rq_strategies_agree() {
    let mut rng = StdRng::seed_from_u64(31);
    for trial in 0..10u64 {
        let g = rpq::graph::gen::synthetic(60, 220, 2, 3, 8000 + trial);
        let m = DistanceMatrix::build(&g);
        for _ in 0..6 {
            let pool = ["c0", "c2^2", "c0+", "c0 c1", "c1^2 c2^2 c0", "_^3", "_+ c0"];
            let rq = Rq::new(
                Predicate::parse(&format!("a0 <= {}", rng.gen_range(3..9)), g.schema()).unwrap(),
                Predicate::parse(&format!("a1 >= {}", rng.gen_range(0..6)), g.schema()).unwrap(),
                FRegex::parse(pool[rng.gen_range(0..pool.len())], g.alphabet()).unwrap(),
            );
            let a = rq.eval_bfs(&g);
            assert_eq!(a, rq.eval_with_matrix(&g, &m), "DM, trial {trial}");
            assert_eq!(a, rq.eval_bibfs(&g), "biBFS, trial {trial}");
        }
    }
}

#[test]
fn rq_pairs_really_have_matching_paths() {
    // semantic spot-check: every reported pair is connected by a path whose
    // color word the regex accepts (verified by explicit path enumeration)
    let g = rpq::graph::gen::synthetic(25, 60, 1, 2, 99);
    let re = FRegex::parse("c0^2 c1", g.alphabet()).unwrap();
    let rq = Rq::new(
        Predicate::always_true(),
        Predicate::always_true(),
        re.clone(),
    );
    let result = rq.eval_bfs(&g);
    // enumerate all words along paths up to length 3 from each source
    for &(x, y) in result.as_slice() {
        let mut found = false;
        let mut stack: Vec<(NodeId, Vec<rpq::graph::Color>)> = vec![(x, vec![])];
        while let Some((u, word)) = stack.pop() {
            if word.len() > 3 {
                continue;
            }
            if u == y && !word.is_empty() && re.matches(&word) {
                found = true;
                break;
            }
            if word.len() < 3 {
                for e in g.out_edges(u) {
                    let mut w = word.clone();
                    w.push(e.color);
                    stack.push((e.node, w));
                }
            }
        }
        assert!(found, "reported pair ({x:?},{y:?}) has no accepting path");
    }
}

#[test]
fn minimized_patterns_evaluate_equivalently() {
    let mut rng = StdRng::seed_from_u64(555);
    for trial in 0..6u64 {
        let g = rpq::graph::gen::synthetic(40, 130, 2, 2, 600 + trial);
        let m = DistanceMatrix::build(&g);
        let pq = random_pattern(&g, &mut rng, 4);
        let slim = minimize(&pq);
        assert!(rpq::core::pq_equivalent(&slim, &pq), "trial {trial}");
        assert!(slim.size() <= pq.size());
        let a = JoinMatch::eval(&pq, &g, &mut MatrixReach::new(&m));
        let b = JoinMatch::eval(&slim, &g, &mut MatrixReach::new(&m));
        // equivalence implies the same emptiness and, for each edge of the
        // minimized query, a covering edge of the original (and vice versa)
        assert_eq!(a.is_empty(), b.is_empty(), "trial {trial}");
    }
}

#[test]
fn subiso_embeddings_are_sound() {
    // every SubIso match pair must satisfy its node predicate and have the
    // required adjacent edges when the full embedding is rebuilt
    let mut rng = StdRng::seed_from_u64(808);
    for trial in 0..5u64 {
        let g = rpq::graph::gen::synthetic(30, 90, 1, 2, 300 + trial);
        let mut pq = Pq::new();
        let n_nodes = rng.gen_range(2..4usize);
        for i in 0..n_nodes {
            pq.add_node(&format!("u{i}"), Predicate::always_true());
        }
        for w in 0..n_nodes - 1 {
            let color = if rng.gen_bool(0.5) { "c0" } else { "c1" };
            pq.add_edge(w, w + 1, FRegex::parse(color, g.alphabet()).unwrap());
        }
        let res = rpq::core::baseline::subiso_match(&pq, &g, 1 << 22);
        // match pairs are a projection of complete embeddings; check they
        // at least satisfy the unary predicate and local edge consistency
        for &(u, x) in &res.match_pairs {
            assert!(pq.node(u).pred.matches(g.attrs(x)));
            for &ei in pq.out_edges(u) {
                let e = pq.edge(ei);
                let color = e.regex.atoms()[0].color;
                assert!(
                    g.out_edges(x).iter().any(|de| color.admits(de.color)),
                    "match pair ({u},{x:?}) lacks any {color:?} out-edge"
                );
            }
        }
    }
}
