//! Parity suite for the unified reachability-backend layer: both PQ
//! algorithms (`JoinMatch`, `SplitMatch`) over all three backends — dense
//! matrix, pruned 2-hop labels, LRU-cached product search — must answer
//! bit-identically to the `eval_naive` reference fixpoint on random graphs
//! and patterns; and an `UpdatableEngine` stream test drives the new
//! PQ-hop serving path (`Plan::PqJoinHop` / `Plan::PqSplitHop`) across 12
//! published versions.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rpq::prelude::*;
use std::sync::Arc;

/// Random pattern over `g`'s schema/alphabet: 2–5 nodes, a mix of
/// always-true and attribute predicates, edges drawn from a regex pool
/// that covers single atoms, chains, bounded powers, `+` and wildcards.
fn random_pq(g: &Graph, rng: &mut StdRng) -> Pq {
    let mut pq = Pq::new();
    let n_nodes = rng.gen_range(2..5usize);
    for i in 0..n_nodes {
        let pred = if rng.gen_bool(0.5) {
            Predicate::parse(&format!("a0 <= {}", rng.gen_range(3..10)), g.schema()).unwrap()
        } else {
            Predicate::always_true()
        };
        pq.add_node(&format!("u{i}"), pred);
    }
    let pool = ["c0", "c1^2", "c0+", "c0^2 c1", "_^3", "_+", "c1 _"];
    for _ in 0..rng.gen_range(1..=n_nodes + 2) {
        let u = rng.gen_range(0..n_nodes);
        let v = rng.gen_range(0..n_nodes);
        let r = pool[rng.gen_range(0..pool.len())];
        pq.add_edge(u, v, FRegex::parse(r, g.alphabet()).unwrap());
    }
    pq
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    /// Every (algorithm × backend) combination equals `eval_naive`.
    #[test]
    fn join_and_split_agree_with_naive_on_all_backends(
        n in 10usize..60,
        density in 2usize..5,
        seed in 0u64..10_000,
    ) {
        let g = rpq::graph::gen::synthetic(n, n * density, 2, 3, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
        let pq = random_pq(&g, &mut rng);
        let oracle = pq.eval_naive(&g);

        let m = DistanceMatrix::build(&g);
        let labels = HopLabels::build(&g);
        prop_assert!(labels.is_exact());

        prop_assert_eq!(&JoinMatch::eval(&pq, &g, &mut ProbeReach::new(&m)), &oracle, "join/matrix");
        prop_assert_eq!(&JoinMatch::eval(&pq, &g, &mut ProbeReach::new(&labels)), &oracle, "join/hop");
        prop_assert_eq!(&JoinMatch::eval(&pq, &g, &mut CachedReach::new(4096)), &oracle, "join/cache");
        prop_assert_eq!(&SplitMatch::eval(&pq, &g, &mut ProbeReach::new(&m)), &oracle, "split/matrix");
        prop_assert_eq!(&SplitMatch::eval(&pq, &g, &mut ProbeReach::new(&labels)), &oracle, "split/hop");
        prop_assert_eq!(&SplitMatch::eval(&pq, &g, &mut CachedReach::new(4096)), &oracle, "split/cache");
        // multi-worker refinement must not change answers
        prop_assert_eq!(
            &JoinMatch::eval(&pq, &g, &mut ProbeReach::with_workers(&labels, 4)),
            &oracle,
            "join/hop, 4 workers"
        );
    }
}

/// The engine serves every PQ plan it can emit with identical answers:
/// matrix plans under the node limit, hop plans over it, cached plans
/// while no index is usable.
#[test]
fn engine_pq_plans_cover_all_backends_identically() {
    let g = Arc::new(rpq::graph::gen::synthetic(300, 1200, 2, 3, 77));
    let mut rng = StdRng::seed_from_u64(123);
    let pqs: Vec<Pq> = (0..6).map(|_| random_pq(&g, &mut rng)).collect();
    let queries: Vec<Query> = pqs.iter().cloned().map(Query::Pq).collect();

    let matrix_engine = QueryEngine::with_config(
        Arc::clone(&g),
        EngineConfig::builder()
            .matrix_node_limit(usize::MAX)
            .build()
            .unwrap(),
    );
    let hop_engine = QueryEngine::with_config(
        Arc::clone(&g),
        EngineConfig::builder()
            .matrix_node_limit(0)
            .build()
            .unwrap(),
    );
    hop_engine.force_hop_labels().expect("fits default budget");
    let cached_engine = QueryEngine::with_config(
        Arc::clone(&g),
        EngineConfig::builder()
            .matrix_node_limit(0)
            .hop_label_budget(0)
            .build()
            .unwrap(),
    );

    let out_m = matrix_engine.run_batch(&queries);
    let out_h = hop_engine.run_batch(&queries);
    let out_c = cached_engine.run_batch(&queries);
    let mut seen = std::collections::HashSet::new();
    for (i, pq) in pqs.iter().enumerate() {
        let naive = pq.eval_naive(&g);
        for (name, batch) in [("matrix", &out_m), ("hop", &out_h), ("cached", &out_c)] {
            assert_eq!(
                batch.items()[i].output.as_pq().unwrap(),
                &naive,
                "{name} engine, pq {i}"
            );
            seen.insert(batch.items()[i].plan);
        }
    }
    for plan in &seen {
        assert!(
            matches!(
                plan,
                Plan::PqJoinMatrix
                    | Plan::PqSplitMatrix
                    | Plan::PqJoinHop
                    | Plan::PqSplitHop
                    | Plan::PqJoinCached
                    | Plan::PqSplitCached
            ),
            "unexpected plan {plan:?}"
        );
    }
    assert!(
        seen.iter()
            .any(|p| matches!(p, Plan::PqJoinHop | Plan::PqSplitHop)),
        "hop engine never planned a hop backend: {seen:?}"
    );
}

/// Acceptance: a 12-batch update stream served entirely in the over-limit
/// regime. Every published version answers PQ batches identically to the
/// reference fixpoint on its own graph — through the search fallback while
/// that version's index build has not landed, and through the PQ-hop plans
/// once it has. A registered standing query keeps being served from its
/// maintained sets the whole time.
#[test]
fn pq_hop_path_tracks_update_stream() {
    const NODES: usize = 250;
    let mut rng = StdRng::seed_from_u64(4242);
    let g0 = rpq::graph::gen::synthetic(NODES, 4 * NODES, 2, 3, 5);
    let engine = UpdatableEngine::with_config(
        g0,
        EngineConfig::builder()
            .matrix_node_limit(0)
            .workers(2)
            .build()
            .unwrap(),
    );

    // a standing cyclic pattern, maintained incrementally across the stream
    let snap0 = engine.snapshot();
    let standing = {
        let g = snap0.graph();
        let mut pq = Pq::new();
        let a = pq.add_node("a", Predicate::parse("a0 <= 6", g.schema()).unwrap());
        let b = pq.add_node("b", Predicate::always_true());
        pq.add_edge(a, b, FRegex::parse("c0 c1", g.alphabet()).unwrap());
        pq.add_edge(b, a, FRegex::parse("_+", g.alphabet()).unwrap());
        pq
    };
    let sid = engine.register_pq(standing.clone());

    for round in 0..12 {
        let updates: Vec<Update> = (0..25)
            .filter_map(|_| {
                let x = NodeId(rng.gen_range(0..NODES as u32));
                let y = NodeId(rng.gen_range(0..NODES as u32));
                if x == y {
                    return None;
                }
                let c = Color(rng.gen_range(0..3));
                Some(if rng.gen_bool(0.5) {
                    Update::Insert(x, y, c)
                } else {
                    Update::Delete(x, y, c)
                })
            })
            .collect();
        let snap = engine.apply(&updates).unwrap().snapshot;
        let g = snap.graph().clone();
        let mut round_rng = StdRng::seed_from_u64(round);
        let pqs: Vec<Pq> = (0..3).map(|_| random_pq(&g, &mut round_rng)).collect();
        let queries: Vec<Query> = pqs.iter().cloned().map(Query::Pq).collect();

        // before this version's index lands: cached fallback, same answers
        let stale = snap.run_batch(&queries);
        for (item, pq) in stale.items().iter().zip(&pqs) {
            assert_eq!(
                item.output.as_pq().unwrap(),
                &pq.eval_naive(&g),
                "round {round} stale"
            );
        }

        // force the per-version build: every PQ must plan a hop backend
        snap.engine().force_hop_labels().expect("fits budget");
        let indexed = snap.run_batch(&queries);
        for (item, pq) in indexed.items().iter().zip(&pqs) {
            assert!(
                matches!(item.plan, Plan::PqJoinHop | Plan::PqSplitHop),
                "round {round}: expected a hop plan, got {:?}",
                item.plan
            );
            assert_eq!(
                item.output.as_pq().unwrap(),
                &pq.eval_naive(&g),
                "round {round} through the hop backend"
            );
        }

        // the standing query is still served from maintained sets and
        // equals full re-evaluation on the current graph
        assert_eq!(
            snap.plan_query(&Query::Pq(standing.clone())),
            Plan::PqStanding,
            "round {round}"
        );
        let served = snap.run_query(&Query::Pq(standing.clone()));
        assert_eq!(
            served.as_pq().unwrap(),
            &standing.eval_naive(&g),
            "round {round} standing"
        );
        assert_eq!(
            served.as_pq().unwrap(),
            &*snap.standing_result(sid).unwrap(),
            "round {round} standing handle"
        );
    }
}
