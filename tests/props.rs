//! Property-based tests (proptest) on the core invariants:
//!
//! * the paper's linear containment scan is sound w.r.t. the exact decider,
//! * regex matching agrees with its NFA compilation,
//! * RQ evaluation strategies are interchangeable,
//! * PQ algorithms equal the declarative fixpoint semantics,
//! * minimization preserves equivalence and never grows a query,
//! * PQ containment is a preorder consistent with evaluation.

use proptest::prelude::*;
use rpq::prelude::*;
use rpq_regex::{Atom, Quant};

const NUM_COLORS: usize = 3;

fn arb_color() -> impl Strategy<Value = rpq::graph::Color> {
    prop_oneof![
        3 => (0..NUM_COLORS as u8).prop_map(rpq::graph::Color),
        1 => Just(WILDCARD),
    ]
}

fn arb_quant() -> impl Strategy<Value = Quant> {
    prop_oneof![
        2 => Just(Quant::One),
        3 => (2u32..5).prop_map(Quant::AtMost),
        1 => Just(Quant::Plus),
    ]
}

fn arb_regex() -> impl Strategy<Value = FRegex> {
    prop::collection::vec((arb_color(), arb_quant()), 1..4)
        .prop_map(|atoms| FRegex::new(atoms.into_iter().map(|(c, q)| Atom::new(c, q)).collect()))
}

fn arb_word() -> impl Strategy<Value = Vec<rpq::graph::Color>> {
    prop::collection::vec((0..NUM_COLORS as u8).prop_map(rpq::graph::Color), 0..8)
}

/// A small random data graph plus its distance matrix inputs.
fn arb_graph() -> impl Strategy<Value = (u64, usize, usize)> {
    (0u64..10_000, 3usize..26, 0usize..70)
}

fn build_graph(seed: u64, n: usize, e: usize) -> Graph {
    rpq::graph::gen::synthetic(n, e.min(n * (n - 1) / 2), 2, NUM_COLORS, seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Soundness of the linear scan: scan-positive ⇒ exact-positive.
    #[test]
    fn scan_containment_is_sound(a in arb_regex(), b in arb_regex()) {
        if rpq_regex::contain::contains_scan(&a, &b) {
            prop_assert!(rpq_regex::contain::contains_exact(&a, &b, NUM_COLORS));
        }
    }

    /// Exact containment really is containment: any word matched by `a`
    /// is matched by `b` whenever the decider says `a ⊆ b`.
    #[test]
    fn exact_containment_respects_words(a in arb_regex(), b in arb_regex(), w in arb_word()) {
        if rpq_regex::contain::contains_exact(&a, &b, NUM_COLORS) && a.matches(&w) {
            prop_assert!(b.matches(&w), "word {w:?} separates the languages");
        }
    }

    /// The NFA accepts exactly the words the matcher accepts.
    #[test]
    fn nfa_equals_matcher(re in arb_regex(), w in arb_word()) {
        let nfa = rpq_regex::Nfa::from_regex(&re);
        prop_assert_eq!(nfa.accepts(&w), re.matches(&w));
    }

    /// Scan containment is reflexive and transitive on the regex class.
    #[test]
    fn scan_is_a_preorder(a in arb_regex(), b in arb_regex(), c in arb_regex()) {
        use rpq_regex::contain::contains_scan;
        prop_assert!(contains_scan(&a, &a));
        if contains_scan(&a, &b) && contains_scan(&b, &c) {
            prop_assert!(contains_scan(&a, &c));
        }
    }
}

proptest! {
    // graph-valued cases are costlier; fewer of them
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// All three RQ strategies return identical results.
    #[test]
    fn rq_strategies_interchangeable(
        (seed, n, e) in arb_graph(),
        re in arb_regex(),
        lo in 0i64..8,
    ) {
        let g = build_graph(seed, n, e);
        let m = DistanceMatrix::build(&g);
        let rq = Rq::new(
            Predicate::parse(&format!("a0 >= {lo}"), g.schema()).unwrap(),
            Predicate::always_true(),
            re,
        );
        let a = rq.eval_bfs(&g);
        prop_assert_eq!(&a, &rq.eval_with_matrix(&g, &m), "DM");
        prop_assert_eq!(&a, &rq.eval_bibfs(&g), "biBFS");
    }

    /// JoinMatch and SplitMatch (both backends) equal the fixpoint
    /// semantics on arbitrary 2-node patterns with a possible cycle.
    #[test]
    fn pq_algorithms_equal_semantics(
        (seed, n, e) in arb_graph(),
        re1 in arb_regex(),
        re2 in prop::option::of(arb_regex()),
        bound in 0i64..8,
    ) {
        let g = build_graph(seed, n, e);
        let m = DistanceMatrix::build(&g);
        let mut pq = Pq::new();
        let a = pq.add_node("a", Predicate::parse(&format!("a1 <= {bound}"), g.schema()).unwrap());
        let b = pq.add_node("b", Predicate::always_true());
        pq.add_edge(a, b, re1);
        if let Some(r2) = re2 {
            pq.add_edge(b, a, r2);
        }
        let oracle = pq.eval_naive(&g);
        prop_assert_eq!(&JoinMatch::eval(&pq, &g, &mut MatrixReach::new(&m)), &oracle);
        prop_assert_eq!(&JoinMatch::eval(&pq, &g, &mut CachedReach::new(1 << 12)), &oracle);
        prop_assert_eq!(&SplitMatch::eval(&pq, &g, &mut MatrixReach::new(&m)), &oracle);
        prop_assert_eq!(&SplitMatch::eval(&pq, &g, &mut CachedReach::new(1 << 12)), &oracle);
    }

    /// Minimization: equivalent, never larger, and idempotent in size.
    #[test]
    fn minimize_invariants(
        re1 in arb_regex(),
        re2 in arb_regex(),
        re3 in arb_regex(),
        dup in any::<bool>(),
    ) {
        let mut schema = Schema::new();
        schema.intern("t");
        let p = |v: i64| Predicate::parse(&format!("t = {v}"), &schema).unwrap();
        let mut q = Pq::new();
        let r = q.add_node("r", p(0));
        let x = q.add_node("x", p(1));
        let y = q.add_node("y", p(1));
        q.add_edge(r, x, re1.clone());
        q.add_edge(r, y, if dup { re1 } else { re2 });
        q.add_edge(x, r, re3.clone());
        q.add_edge(y, r, re3);
        let m1 = minimize(&q);
        prop_assert!(rpq::core::pq_equivalent(&m1, &q), "equivalence lost");
        prop_assert!(m1.size() <= q.size(), "minimization grew the query");
        let m2 = minimize(&m1);
        prop_assert!(rpq::core::pq_equivalent(&m2, &m1));
        prop_assert_eq!(m2.size(), m1.size(), "not a fixpoint");
    }

    /// PQ containment is consistent with evaluation on single-edge
    /// patterns: a ⊑ b implies Se(a) ⊆ Se(b) on every tested graph.
    #[test]
    fn pq_containment_consistent_with_eval(
        (seed, n, e) in arb_graph(),
        ra in arb_regex(),
        rb in arb_regex(),
    ) {
        let g = build_graph(seed, n, e);
        let mk = |re: &FRegex| {
            let mut q = Pq::new();
            let a = q.add_node("a", Predicate::always_true());
            let b = q.add_node("b", Predicate::always_true());
            q.add_edge(a, b, re.clone());
            q
        };
        let qa = mk(&ra);
        let qb = mk(&rb);
        if rpq::core::pq_contained_in(&qa, &qb) {
            let sa = qa.eval_naive(&g);
            let sb = qb.eval_naive(&g);
            for p in sa.edge_matches(0) {
                prop_assert!(sb.edge_matches(0).contains(p), "pair {p:?} not covered");
            }
        }
    }
}
