//! Property-based tests (proptest) on the core invariants:
//!
//! * the paper's linear containment scan is sound w.r.t. the exact decider,
//! * regex matching agrees with its NFA compilation,
//! * RQ evaluation strategies are interchangeable,
//! * PQ algorithms equal the declarative fixpoint semantics,
//! * minimization preserves equivalence and never grows a query,
//! * PQ containment is a preorder consistent with evaluation,
//! * incremental index repair is observationally identical to a
//!   from-scratch rebuild (hop labels and sharded labels alike).

use proptest::prelude::*;
use rpq::prelude::*;
use rpq_regex::{Atom, Quant};

const NUM_COLORS: usize = 3;

fn arb_color() -> impl Strategy<Value = rpq::graph::Color> {
    prop_oneof![
        3 => (0..NUM_COLORS as u8).prop_map(rpq::graph::Color),
        1 => Just(WILDCARD),
    ]
}

fn arb_quant() -> impl Strategy<Value = Quant> {
    prop_oneof![
        2 => Just(Quant::One),
        3 => (2u32..5).prop_map(Quant::AtMost),
        1 => Just(Quant::Plus),
    ]
}

fn arb_regex() -> impl Strategy<Value = FRegex> {
    prop::collection::vec((arb_color(), arb_quant()), 1..4)
        .prop_map(|atoms| FRegex::new(atoms.into_iter().map(|(c, q)| Atom::new(c, q)).collect()))
}

fn arb_word() -> impl Strategy<Value = Vec<rpq::graph::Color>> {
    prop::collection::vec((0..NUM_COLORS as u8).prop_map(rpq::graph::Color), 0..8)
}

/// A small random data graph plus its distance matrix inputs.
fn arb_graph() -> impl Strategy<Value = (u64, usize, usize)> {
    (0u64..10_000, 3usize..26, 0usize..70)
}

fn build_graph(seed: u64, n: usize, e: usize) -> Graph {
    rpq::graph::gen::synthetic(n, e.min(n * (n - 1) / 2), 2, NUM_COLORS, seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Soundness of the linear scan: scan-positive ⇒ exact-positive.
    #[test]
    fn scan_containment_is_sound(a in arb_regex(), b in arb_regex()) {
        if rpq_regex::contain::contains_scan(&a, &b) {
            prop_assert!(rpq_regex::contain::contains_exact(&a, &b, NUM_COLORS));
        }
    }

    /// Exact containment really is containment: any word matched by `a`
    /// is matched by `b` whenever the decider says `a ⊆ b`.
    #[test]
    fn exact_containment_respects_words(a in arb_regex(), b in arb_regex(), w in arb_word()) {
        if rpq_regex::contain::contains_exact(&a, &b, NUM_COLORS) && a.matches(&w) {
            prop_assert!(b.matches(&w), "word {w:?} separates the languages");
        }
    }

    /// The NFA accepts exactly the words the matcher accepts.
    #[test]
    fn nfa_equals_matcher(re in arb_regex(), w in arb_word()) {
        let nfa = rpq_regex::Nfa::from_regex(&re);
        prop_assert_eq!(nfa.accepts(&w), re.matches(&w));
    }

    /// Scan containment is reflexive and transitive on the regex class.
    #[test]
    fn scan_is_a_preorder(a in arb_regex(), b in arb_regex(), c in arb_regex()) {
        use rpq_regex::contain::contains_scan;
        prop_assert!(contains_scan(&a, &a));
        if contains_scan(&a, &b) && contains_scan(&b, &c) {
            prop_assert!(contains_scan(&a, &c));
        }
    }
}

proptest! {
    // graph-valued cases are costlier; fewer of them
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// All three RQ strategies return identical results.
    #[test]
    fn rq_strategies_interchangeable(
        (seed, n, e) in arb_graph(),
        re in arb_regex(),
        lo in 0i64..8,
    ) {
        let g = build_graph(seed, n, e);
        let m = DistanceMatrix::build(&g);
        let rq = Rq::new(
            Predicate::parse(&format!("a0 >= {lo}"), g.schema()).unwrap(),
            Predicate::always_true(),
            re,
        );
        let a = rq.eval_bfs(&g);
        prop_assert_eq!(&a, &rq.eval_with_matrix(&g, &m), "DM");
        prop_assert_eq!(&a, &rq.eval_bibfs(&g), "biBFS");
    }

    /// JoinMatch and SplitMatch (both backends) equal the fixpoint
    /// semantics on arbitrary 2-node patterns with a possible cycle.
    #[test]
    fn pq_algorithms_equal_semantics(
        (seed, n, e) in arb_graph(),
        re1 in arb_regex(),
        re2 in prop::option::of(arb_regex()),
        bound in 0i64..8,
    ) {
        let g = build_graph(seed, n, e);
        let m = DistanceMatrix::build(&g);
        let mut pq = Pq::new();
        let a = pq.add_node("a", Predicate::parse(&format!("a1 <= {bound}"), g.schema()).unwrap());
        let b = pq.add_node("b", Predicate::always_true());
        pq.add_edge(a, b, re1);
        if let Some(r2) = re2 {
            pq.add_edge(b, a, r2);
        }
        let oracle = pq.eval_naive(&g);
        prop_assert_eq!(&JoinMatch::eval(&pq, &g, &mut MatrixReach::new(&m)), &oracle);
        prop_assert_eq!(&JoinMatch::eval(&pq, &g, &mut CachedReach::new(1 << 12)), &oracle);
        prop_assert_eq!(&SplitMatch::eval(&pq, &g, &mut MatrixReach::new(&m)), &oracle);
        prop_assert_eq!(&SplitMatch::eval(&pq, &g, &mut CachedReach::new(1 << 12)), &oracle);
    }

    /// Minimization: equivalent, never larger, and idempotent in size.
    #[test]
    fn minimize_invariants(
        re1 in arb_regex(),
        re2 in arb_regex(),
        re3 in arb_regex(),
        dup in any::<bool>(),
    ) {
        let mut schema = Schema::new();
        schema.intern("t");
        let p = |v: i64| Predicate::parse(&format!("t = {v}"), &schema).unwrap();
        let mut q = Pq::new();
        let r = q.add_node("r", p(0));
        let x = q.add_node("x", p(1));
        let y = q.add_node("y", p(1));
        q.add_edge(r, x, re1.clone());
        q.add_edge(r, y, if dup { re1 } else { re2 });
        q.add_edge(x, r, re3.clone());
        q.add_edge(y, r, re3);
        let m1 = minimize(&q);
        prop_assert!(rpq::core::pq_equivalent(&m1, &q), "equivalence lost");
        prop_assert!(m1.size() <= q.size(), "minimization grew the query");
        let m2 = minimize(&m1);
        prop_assert!(rpq::core::pq_equivalent(&m2, &m1));
        prop_assert_eq!(m2.size(), m1.size(), "not a fixpoint");
    }

    /// PQ containment is consistent with evaluation on single-edge
    /// patterns: a ⊑ b implies Se(a) ⊆ Se(b) on every tested graph.
    #[test]
    fn pq_containment_consistent_with_eval(
        (seed, n, e) in arb_graph(),
        ra in arb_regex(),
        rb in arb_regex(),
    ) {
        let g = build_graph(seed, n, e);
        let mk = |re: &FRegex| {
            let mut q = Pq::new();
            let a = q.add_node("a", Predicate::always_true());
            let b = q.add_node("b", Predicate::always_true());
            q.add_edge(a, b, re.clone());
            q
        };
        let qa = mk(&ra);
        let qb = mk(&rb);
        if rpq::core::pq_contained_in(&qa, &qb) {
            let sa = qa.eval_naive(&g);
            let sb = qb.eval_naive(&g);
            for p in sa.edge_matches(0) {
                prop_assert!(sb.edge_matches(0).contains(p), "pair {p:?} not covered");
            }
        }
    }
}

// ---- incremental index repair ≡ from-scratch rebuild -------------------

fn lcg(s: &mut u64) -> u64 {
    *s = s
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *s >> 33
}

/// Apply `count` pseudo-random edge flips to `g`, returning the new graph
/// and the effective change list (the repair input contract).
fn mutation_round(
    g: &Graph,
    count: usize,
    seed: u64,
) -> (Graph, Vec<(NodeId, NodeId, rpq::graph::Color)>) {
    let n = g.node_count() as u64;
    let m = g.alphabet().len() as u64;
    let mut b = GraphBuilder::from_graph(g);
    let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
    let mut eff = Vec::new();
    for _ in 0..count {
        let u = NodeId((lcg(&mut s) % n) as u32);
        let v = NodeId((lcg(&mut s) % n) as u32);
        let c = rpq::graph::Color((lcg(&mut s) % m) as u8);
        let applied = match lcg(&mut s) % 2 {
            0 => b.insert_edge(u, v, c) || b.remove_edge(u, v, c),
            _ => b.remove_edge(u, v, c) || b.insert_edge(u, v, c),
        };
        if applied {
            eff.push((u, v, c));
        }
    }
    (b.build(), eff)
}

/// Every observation the engine makes of a label index — point probes,
/// bounded scans, batched reverse reachability — must be identical
/// between `repaired` and `fresh` on `g`.
fn assert_probe_equal(g: &Graph, repaired: &dyn DistProbe, fresh: &dyn DistProbe) {
    let colors: Vec<rpq::graph::Color> = (0..NUM_COLORS as u8)
        .map(rpq::graph::Color)
        .chain([WILDCARD])
        .collect();
    let nodes: Vec<NodeId> = g.nodes().collect();
    for &c in &colors {
        for &u in &nodes {
            for &v in &nodes {
                assert_eq!(
                    repaired.dist(u, v, c),
                    fresh.dist(u, v, c),
                    "dist({u:?},{v:?},{c:?})"
                );
            }
            for max in [1u16, 3] {
                let mut got = vec![false; g.node_count()];
                repaired.for_each_within(u, c, max, &mut |z| got[z.index()] = true);
                let mut want = vec![false; g.node_count()];
                fresh.for_each_within(u, c, max, &mut |z| want[z.index()] = true);
                assert_eq!(got, want, "scan from {u:?} color {c:?} max {max}");
            }
        }
        let targets: Vec<NodeId> = nodes.iter().copied().step_by(3).collect();
        for max_len in [None, Some(2u32)] {
            assert_eq!(
                repaired.sources_reaching_within(g, &nodes, &targets, c, max_len),
                fresh.sources_reaching_within(g, &nodes, &targets, c, max_len),
                "sources_reaching color {c:?} bound {max_len:?}"
            );
        }
    }
}

/// A partition assigning node `i` to shard `i % k`: on most graphs this
/// cuts (nearly) every edge, the degenerate worst case for the overlay.
fn round_robin_partition(n: usize, k: usize) -> Partition {
    Partition::from_shard_of((0..n as u32).map(|i| i % k as u32).collect(), k)
}

proptest! {
    // repair + rebuild + full probe comparison per case: keep cases low
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// A repaired hop-label index is observationally identical to one
    /// built from scratch on the updated graph — across chained rounds.
    #[test]
    fn hop_repair_equals_rebuild(
        (seed, n, e) in arb_graph(),
        rounds in 1usize..3,
        flips in 1usize..10,
    ) {
        let mut g = build_graph(seed.wrapping_add(17), n.max(4), e);
        let mut labels = rpq::index::HopLabels::build(&g);
        for round in 0..rounds {
            let (g2, eff) = mutation_round(&g, flips, seed ^ (round as u64) << 7);
            // unlimited budget and invalidation cap: the proptest checks
            // equivalence, the cost model is exercised by the unit tests
            labels = labels
                .repair(&g2, &eff, 0, 0, None)
                .expect("unbudgeted repair cannot fail")
                .labels;
            g = g2;
        }
        assert_probe_equal(&g, &labels, &rpq::index::HopLabels::build(&g));
    }

    /// Repaired sharded labels equal a from-scratch sharded build, on a
    /// clustered partition and on the degenerate partition where every
    /// edge is a cut edge (the overlay carries the whole graph).
    #[test]
    fn sharded_repair_equals_rebuild(
        (seed, n, e) in arb_graph(),
        flips in 1usize..8,
        degenerate in any::<bool>(),
    ) {
        use std::sync::Arc;
        let n = n.max(8);
        let g = Arc::new(build_graph(seed.wrapping_add(29), n, e));
        let k = 3usize;
        let sharded = Arc::new(if degenerate {
            ShardedGraph::with_partition(Arc::clone(&g), round_robin_partition(n, k))
        } else {
            ShardedGraph::new(Arc::clone(&g), k)
        });
        let config = ShardedConfig { shards: k, ..ShardedConfig::default() };
        let labels = ShardedLabels::build_on(Arc::clone(&sharded), &config, None)
            .expect("unbudgeted build cannot fail");

        let (g2, eff) = mutation_round(&g, flips, seed ^ 0xA5A5);
        let g2 = Arc::new(g2);
        let new_sharded = Arc::new(sharded.apply_updates(Arc::clone(&g2), &eff));
        let repaired = labels
            .repair(Arc::clone(&new_sharded), &eff, &[], &config, None)
            .expect("unbudgeted repair cannot fail")
            .labels;
        let fresh = ShardedLabels::build_on(new_sharded, &config, None).unwrap();
        assert_probe_equal(&g2, &repaired, &fresh);
    }
}
