//! End-to-end reproduction of the paper's worked examples (§2) through the
//! public facade API: the Fig. 1 graph, query Q1 (Example 2.2) and query
//! Q2 (Example 2.3), evaluated by every strategy the library ships.

use rpq::prelude::*;

fn n(g: &Graph, l: &str) -> NodeId {
    g.node_by_label(l).unwrap()
}

fn q1(g: &Graph) -> Rq {
    Rq::new(
        Predicate::parse("job = \"biologist\" && sp = \"cloning\"", g.schema()).unwrap(),
        Predicate::parse("job = \"doctor\"", g.schema()).unwrap(),
        FRegex::parse("fa^2 fn", g.alphabet()).unwrap(),
    )
}

fn q2(g: &Graph) -> Pq {
    let mut pq = Pq::new();
    let b = pq.add_node(
        "B",
        Predicate::parse("job = \"doctor\" && dsp = \"cloning\"", g.schema()).unwrap(),
    );
    let c = pq.add_node(
        "C",
        Predicate::parse("job = \"biologist\" && sp = \"cloning\"", g.schema()).unwrap(),
    );
    let d = pq.add_node(
        "D",
        Predicate::parse("uid = \"Alice001\"", g.schema()).unwrap(),
    );
    let re = |s: &str| FRegex::parse(s, g.alphabet()).unwrap();
    pq.add_edge(b, c, re("fn"));
    pq.add_edge(c, b, re("fn"));
    pq.add_edge(c, c, re("fa+"));
    pq.add_edge(b, d, re("fn"));
    pq.add_edge(c, d, re("fa^2 sa^2"));
    pq
}

#[test]
fn example_2_2_q1_result() {
    let g = rpq::graph::gen::essembly();
    let rq = q1(&g);
    let expect = vec![
        (n(&g, "C1"), n(&g, "B1")),
        (n(&g, "C1"), n(&g, "B2")),
        (n(&g, "C2"), n(&g, "B1")),
        (n(&g, "C2"), n(&g, "B2")),
    ];
    let m = DistanceMatrix::build(&g);
    assert_eq!(rq.eval_with_matrix(&g, &m).pairs(), expect);
    assert_eq!(rq.eval_bfs(&g).pairs(), expect);
    assert_eq!(rq.eval_bibfs(&g).pairs(), expect);
}

#[test]
fn example_2_3_q2_result_all_algorithms() {
    let g = rpq::graph::gen::essembly();
    let pq = q2(&g);
    let m = DistanceMatrix::build(&g);
    let oracle = pq.eval_naive(&g);

    let variants: Vec<(&str, PqResult)> = vec![
        (
            "JoinMatchM",
            JoinMatch::eval(&pq, &g, &mut MatrixReach::new(&m)),
        ),
        (
            "JoinMatchC",
            JoinMatch::eval(&pq, &g, &mut CachedReach::new(1 << 12)),
        ),
        (
            "SplitMatchM",
            SplitMatch::eval(&pq, &g, &mut MatrixReach::new(&m)),
        ),
        (
            "SplitMatchC",
            SplitMatch::eval(&pq, &g, &mut CachedReach::new(1 << 12)),
        ),
    ];
    for (name, res) in &variants {
        assert_eq!(res, &oracle, "{name} diverges from the semantics");
    }

    // the exact table of Example 2.3
    let t = |pairs: &[(&str, &str)]| -> Vec<(NodeId, NodeId)> {
        pairs.iter().map(|&(a, b)| (n(&g, a), n(&g, b))).collect()
    };
    assert_eq!(oracle.edge_matches(0), t(&[("B1", "C3"), ("B2", "C3")]));
    assert_eq!(oracle.edge_matches(1), t(&[("C3", "B1"), ("C3", "B2")]));
    assert_eq!(oracle.edge_matches(2), t(&[("C3", "C3")]));
    assert_eq!(oracle.edge_matches(3), t(&[("B1", "D1"), ("B2", "D1")]));
    assert_eq!(oracle.edge_matches(4), t(&[("C3", "D1")]));
}

#[test]
fn q1_as_single_edge_pq_matches_rq() {
    // "RQs are a special case of PQs" (§2 Remark 1)
    let g = rpq::graph::gen::essembly();
    let rq = q1(&g);
    let pq = Pq::from_rq(&rq);
    let m = DistanceMatrix::build(&g);
    let pq_res = JoinMatch::eval(&pq, &g, &mut MatrixReach::new(&m));
    assert_eq!(
        pq_res.edge_matches(0),
        rq.eval_with_matrix(&g, &m).as_slice()
    );
}

#[test]
fn baselines_show_the_fig9b_split() {
    // PQ semantics is the ground truth; SubIso under-reports (recall < 1),
    // bounded simulation over-reports (precision < 1)
    let g = rpq::graph::gen::essembly();
    let mut pq = Pq::new();
    let c = pq.add_node(
        "C",
        Predicate::parse("job = \"biologist\"", g.schema()).unwrap(),
    );
    let b = pq.add_node(
        "B",
        Predicate::parse("job = \"doctor\"", g.schema()).unwrap(),
    );
    pq.add_edge(c, b, FRegex::parse("fa^2 fn", g.alphabet()).unwrap());

    let m = DistanceMatrix::build(&g);
    let truth = JoinMatch::eval(&pq, &g, &mut MatrixReach::new(&m));
    let truth_pairs: std::collections::HashSet<(usize, NodeId)> = (0..pq.node_count())
        .flat_map(|u| truth.node_matches(u).iter().map(move |&x| (u, x)))
        .collect();

    let sub = rpq::core::baseline::subiso_match(&pq, &g, 1 << 20);
    assert!(sub.complete);
    // SubIso maps the edge to ONE data edge of the first color (fa): it
    // cannot see the fa-fa-fn paths, missing every true match
    assert!(
        sub.match_pairs.len() < truth_pairs.len(),
        "SubIso must under-report: {} vs {}",
        sub.match_pairs.len(),
        truth_pairs.len()
    );

    let relaxed = rpq::core::baseline::bounded_sim_match(&pq, &g, &mut MatrixReach::new(&m));
    let relaxed_pairs: std::collections::HashSet<(usize, NodeId)> = (0..pq.node_count())
        .flat_map(|u| relaxed.node_matches(u).iter().map(move |&x| (u, x)))
        .collect();
    for p in &truth_pairs {
        assert!(relaxed_pairs.contains(p), "Match must have full recall");
    }
    assert!(
        relaxed_pairs.len() > truth_pairs.len(),
        "Match must over-report on multi-colored data"
    );
}

#[test]
fn minimization_preserves_q2_semantics() {
    let g = rpq::graph::gen::essembly();
    let pq = q2(&g);
    let slim = minimize(&pq);
    assert!(rpq::core::pq_equivalent(&slim, &pq));
    assert!(slim.size() <= pq.size());
    // evaluating the minimized query yields matching per-class answers:
    // total match-set size is preserved under the containment mappings
    let m = DistanceMatrix::build(&g);
    let a = JoinMatch::eval(&pq, &g, &mut MatrixReach::new(&m));
    let b = JoinMatch::eval(&slim, &g, &mut MatrixReach::new(&m));
    assert_eq!(a.is_empty(), b.is_empty());
}
