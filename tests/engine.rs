//! Integration tests for the parallel batch query engine: parity with
//! sequential single-query evaluation, batch-aware planning, memo sharing,
//! and engine reuse across threads.

use rpq::prelude::*;
use rpq_bench::querygen::{generate_pq, generate_rq, QueryParams};
use std::sync::Arc;

/// A 64-query RQ workload with hot keys repeating every 4th query.
fn rq_workload(g: &Graph, batch: usize) -> Vec<Rq> {
    (0..batch)
        .map(|i| {
            let seed = if i % 4 == 0 {
                (i % 8) as u64
            } else {
                500 + i as u64
            };
            generate_rq(g, 2, 4, 2, seed)
        })
        .collect()
}

/// Acceptance: a batch of ≥64 RQs on a 10k-node generated graph, run on
/// ≥2 worker threads, returns results identical to sequential
/// single-query evaluation.
#[test]
fn batch_of_64_rqs_on_10k_graph_matches_sequential() {
    let g = Arc::new(rpq::graph::gen::youtube_like(10_000, 11));
    assert!(g.node_count() >= 10_000);
    let engine = QueryEngine::with_config(
        Arc::clone(&g),
        EngineConfig::builder()
            .workers(4)
            // this test asserts the *search* planning regime; disable the
            // hop-label index so its background build cannot race the batch
            .hop_label_budget(0)
            .build()
            .unwrap(),
    );
    // 10k nodes is over the matrix limit: the engine must plan around it
    assert!(!engine.matrix_available());

    let rqs = rq_workload(&g, 64);
    let queries: Vec<Query> = rqs.iter().cloned().map(Query::Rq).collect();
    let batch = engine.run_batch(&queries);

    assert_eq!(batch.len(), 64);
    assert!(batch.workers() >= 2, "got {} workers", batch.workers());

    // sequential reference: the seed's own single-query strategy
    for (i, rq) in rqs.iter().enumerate() {
        let expect = rq.eval_bibfs(&g);
        assert_eq!(
            batch.items()[i].output.as_rq().expect("RQ in, RQ out"),
            &expect,
            "query {i} diverged from sequential evaluation"
        );
    }

    // the hot keys must have been shared through the memo
    let (hits, misses) = batch.memo_stats();
    assert!(
        hits > 0,
        "repeated keys should hit the memo ({hits}/{misses})"
    );
    let memoized = batch
        .items()
        .iter()
        .filter(|it| it.plan == Plan::RqBfsMemo)
        .count();
    assert!(
        memoized >= 16,
        "hot keys should plan BFS+memo, got {memoized}"
    );
}

/// Mixed RQ/PQ batch on a small graph: the engine builds the matrix
/// lazily and every output equals the corresponding sequential strategy.
#[test]
fn mixed_batch_on_small_graph_matches_sequential() {
    let g = Arc::new(rpq::graph::gen::youtube_like(1200, 42));
    let engine = QueryEngine::new(Arc::clone(&g));
    assert!(engine.matrix_available());

    let params = QueryParams::defaults();
    let rqs: Vec<Rq> = (0..12).map(|i| generate_rq(&g, 2, 4, 2, i)).collect();
    let pqs: Vec<Pq> = (0..4).map(|i| generate_pq(&g, &params, i)).collect();
    let queries: Vec<Query> = rqs
        .iter()
        .cloned()
        .map(Query::Rq)
        .chain(pqs.iter().cloned().map(Query::Pq))
        .collect();

    let batch = engine.run_batch(&queries);
    assert_eq!(batch.len(), 16);

    let m = DistanceMatrix::build(&g);
    for (i, rq) in rqs.iter().enumerate() {
        assert_eq!(
            batch.items()[i].output.as_rq().unwrap(),
            &rq.eval_with_matrix(&g, &m),
            "RQ {i}"
        );
        assert_eq!(batch.items()[i].plan, Plan::RqDm);
    }
    for (i, pq) in pqs.iter().enumerate() {
        // either matrix-backed algorithm may be planned (shape-aware
        // join/split choice); the answer must equal JoinMatch's regardless
        assert_eq!(
            batch.items()[12 + i].output.as_pq().unwrap(),
            &JoinMatch::eval(pq, &g, &mut MatrixReach::new(&m)),
            "PQ {i}"
        );
        let plan = batch.items()[12 + i].plan;
        assert!(
            matches!(plan, Plan::PqJoinMatrix | Plan::PqSplitMatrix),
            "PQ {i} must run a matrix-backed plan, got {plan:?}"
        );
        assert_eq!(
            plan,
            rpq::engine::planner::plan_pq(
                pq,
                true,
                false,
                false,
                rpq::engine::planner::SPLIT_CROSSOVER
            )
        );
    }
}

/// The engine is Sync: many threads can push batches at one engine and
/// indices are built exactly once.
#[test]
fn engine_shared_across_threads() {
    let g = Arc::new(rpq::graph::gen::youtube_like(800, 3));
    let engine = Arc::new(QueryEngine::new(Arc::clone(&g)));
    let rqs = rq_workload(&g, 16);
    let queries: Vec<Query> = rqs.iter().cloned().map(Query::Rq).collect();

    let results: Vec<BatchResult> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let engine = Arc::clone(&engine);
                let queries = queries.clone();
                s.spawn(move || engine.run_batch(&queries))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let m = DistanceMatrix::build(&g);
    for batch in &results {
        for (i, rq) in rqs.iter().enumerate() {
            assert_eq!(
                batch.items()[i].output.as_rq().unwrap(),
                &rq.eval_with_matrix(&g, &m)
            );
        }
    }
}

/// Per-query timing and plan labels are recorded for the bench harness.
#[test]
fn batch_result_reports_plans_and_timing() {
    let g = Arc::new(rpq::graph::gen::youtube_like(600, 9));
    let engine = QueryEngine::with_config(
        Arc::clone(&g),
        EngineConfig::builder()
            .workers(2)
            .matrix_node_limit(0) // force index-free plans…
            .hop_label_budget(0) // …and keep them index-free (no hop build)
            .build()
            .unwrap(),
    );
    let hot = generate_rq(&g, 2, 4, 2, 1);
    let queries = vec![
        Query::Rq(hot.clone()),
        Query::Rq(hot),
        Query::Rq(generate_rq(&g, 2, 4, 3, 77)),
    ];
    let batch = engine.run_batch(&queries);

    assert_eq!(batch.items()[0].plan, Plan::RqBfsMemo);
    assert_eq!(batch.items()[1].plan, Plan::RqBfsMemo);
    assert_eq!(batch.items()[2].plan, Plan::RqBiBfs);
    for item in batch.items() {
        assert!(!item.plan.name().is_empty());
    }
    assert!(batch.wall_time().as_nanos() > 0);
    assert!(batch.total_query_time() >= batch.items().iter().map(|i| i.time).max().unwrap());
    assert_eq!(batch.outputs().count(), 3);

    // single-query path agrees with the batch path
    let single = engine.run_query(&queries[2]);
    assert_eq!(&single, &batch.items()[2].output);
}
