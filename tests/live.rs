//! Integration tests for the live-update serving layer: standing-query
//! maintenance against a stream of update batches, snapshot isolation for
//! batches issued against pre-update versions, and consistency of
//! snapshots read concurrently with writers.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rpq::prelude::*;
use std::sync::Arc;

const NODES: usize = 60;
const COLORS: u8 = 3;

fn test_graph(seed: u64) -> Graph {
    rpq::graph::gen::synthetic(NODES, 200, 2, COLORS as usize, seed)
}

fn standing_pq(g: &Graph, bound: i64) -> Pq {
    let mut pq = Pq::new();
    let a = pq.add_node(
        "a",
        Predicate::parse(&format!("a0 <= {bound}"), g.schema()).unwrap(),
    );
    let b = pq.add_node("b", Predicate::always_true());
    pq.add_edge(a, b, FRegex::parse("c0^2 c1", g.alphabet()).unwrap());
    pq.add_edge(b, a, FRegex::parse("_+", g.alphabet()).unwrap());
    pq
}

fn random_updates(rng: &mut StdRng, count: usize) -> Vec<Update> {
    (0..count)
        .filter_map(|_| {
            let x = NodeId(rng.gen_range(0..NODES as u32));
            let y = NodeId(rng.gen_range(0..NODES as u32));
            if x == y {
                return None;
            }
            let c = Color(rng.gen_range(0..COLORS));
            Some(if rng.gen_bool(0.5) {
                Update::Insert(x, y, c)
            } else {
                Update::Delete(x, y, c)
            })
        })
        .collect()
}

fn full_eval(pq: &Pq, g: &Graph) -> PqResult {
    let mut cached = CachedReach::with_default_capacity();
    JoinMatch::eval(pq, g, &mut cached)
}

/// Acceptance: under an interleaved stream of ≥ 10 update batches, the
/// registered standing PQ's maintained answer equals a from-scratch
/// evaluation after every batch, and it is served (not re-evaluated) by
/// the snapshot's batch path.
#[test]
fn standing_pq_tracks_update_stream() {
    let mut rng = StdRng::seed_from_u64(2024);
    let g = test_graph(5);
    let engine = UpdatableEngine::new(g);
    let pq = standing_pq(engine.snapshot().graph(), 6);
    let id = engine.register_pq(pq.clone());

    let mut published = 0u64;
    for step in 0..14 {
        let updates = random_updates(&mut rng, 3);
        let report = engine.apply(&updates).unwrap();
        published += u64::from(report.applied > 0);
        assert_eq!(report.version, published, "step {step}");

        let snap = report.snapshot;
        let maintained = snap.standing_result(id).expect("registered");
        let reference = full_eval(&pq, snap.graph());
        assert_eq!(&*maintained, &reference, "step {step} diverged");

        // the batch path serves the standing answer under the standing plan
        let batch = snap.run_batch(&[Query::Pq(pq.clone())]);
        assert_eq!(batch.items()[0].plan, Plan::PqStanding, "step {step}");
        assert_eq!(batch.items()[0].output.as_pq().unwrap(), &reference);
    }
    assert!(published >= 10, "stream too short: {published} batches");
}

/// Acceptance: an RQ/PQ batch issued against a snapshot taken *before* an
/// update returns the pre-update answers, while the post-update snapshot
/// returns the new ones.
#[test]
fn snapshot_isolation_for_batches() {
    let mut rng = StdRng::seed_from_u64(77);
    let g = test_graph(11);
    let engine = UpdatableEngine::new(g);

    let graph0 = engine.snapshot().graph().clone();
    let rq = Rq::new(
        Predicate::parse("a0 <= 5", graph0.schema()).unwrap(),
        Predicate::always_true(),
        FRegex::parse("c0 c1", graph0.alphabet()).unwrap(),
    );
    let pq = standing_pq(&graph0, 7);
    let queries = vec![Query::Rq(rq.clone()), Query::Pq(pq.clone())];

    for step in 0..10 {
        let before = engine.snapshot();
        let expect_rq_before = rq.eval_bfs(before.graph());
        let expect_pq_before = full_eval(&pq, before.graph());

        let report = engine.apply(&random_updates(&mut rng, 4)).unwrap();

        // the pre-update snapshot answers from the pre-update graph…
        let old = before.run_batch(&queries);
        assert_eq!(
            old.items()[0].output.as_rq().unwrap(),
            &expect_rq_before,
            "step {step}: stale RQ"
        );
        assert_eq!(
            old.items()[1].output.as_pq().unwrap(),
            &expect_pq_before,
            "step {step}: stale PQ"
        );
        // …and the post-update snapshot from the new one
        let new = report.snapshot.run_batch(&queries);
        assert_eq!(
            new.items()[0].output.as_rq().unwrap(),
            &rq.eval_bfs(report.snapshot.graph()),
            "step {step}: fresh RQ"
        );
        assert_eq!(
            new.items()[1].output.as_pq().unwrap(),
            &full_eval(&pq, report.snapshot.graph()),
            "step {step}: fresh PQ"
        );
    }
}

/// Distance-audit companion (ISSUE satellite): batches racing a writer's
/// `apply` must observe a *consistent* snapshot — every answer equals a
/// from-scratch evaluation over the graph version the reader pinned
/// (i.e. entirely the old answer or entirely the new one, never a torn
/// mix of both).
#[test]
fn concurrent_readers_see_consistent_snapshots() {
    let engine = Arc::new(UpdatableEngine::new(test_graph(23)));
    let graph0 = engine.snapshot().graph().clone();
    let rq = Rq::new(
        Predicate::parse("a0 <= 6", graph0.schema()).unwrap(),
        Predicate::always_true(),
        FRegex::parse("c0 c1", graph0.alphabet()).unwrap(),
    );

    std::thread::scope(|s| {
        // writer: a stream of update batches
        let writer_engine = Arc::clone(&engine);
        let writer = s.spawn(move || {
            let mut rng = StdRng::seed_from_u64(4242);
            for _ in 0..25 {
                writer_engine.apply(&random_updates(&mut rng, 3)).unwrap();
            }
        });

        // readers: pin a snapshot, evaluate, and verify the answer against
        // that same pinned graph version
        let mut readers = Vec::new();
        for r in 0..2 {
            let engine = Arc::clone(&engine);
            let rq = rq.clone();
            readers.push(s.spawn(move || {
                for i in 0..30 {
                    let snap = engine.snapshot();
                    let batch = snap.run_batch(&[Query::Rq(rq.clone())]);
                    let expect = rq.eval_bfs(snap.graph());
                    assert_eq!(
                        batch.items()[0].output.as_rq().unwrap(),
                        &expect,
                        "reader {r} read {i} (version {}) saw a torn snapshot",
                        snap.version()
                    );
                }
            }));
        }
        writer.join().unwrap();
        for h in readers {
            h.join().unwrap();
        }
    });
}

/// Standing queries registered mid-stream pick up the current version and
/// stay maintained from there on.
#[test]
fn late_registration_joins_the_stream() {
    let mut rng = StdRng::seed_from_u64(9);
    let engine = UpdatableEngine::new(test_graph(31));
    engine.apply(&random_updates(&mut rng, 5)).unwrap();

    let pq = standing_pq(engine.snapshot().graph(), 8);
    let id = engine.register_pq(pq.clone());
    for _ in 0..4 {
        let report = engine.apply(&random_updates(&mut rng, 3)).unwrap();
        let maintained = report.snapshot.standing_result(id).unwrap();
        assert_eq!(&*maintained, &full_eval(&pq, report.snapshot.graph()));
    }
}
