//! Parity suite for the partitioned storage→index→engine stack: RQ and
//! PQ answers through the sharded backend must be **bit-identical** to
//! the single-graph hop-label and matrix backends on random graphs ×
//! random shard counts, including the degenerate partition that cuts
//! every edge; and the engine-level flip (hop build busts its budget →
//! sharded plans) must serve the same answers end to end.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rpq::prelude::*;
use std::sync::Arc;

/// Random RQ over `g`'s schema/alphabet — mixed selectivity, regex pool
/// spanning single atoms, bounded powers, `+` and wildcards.
fn random_rq(g: &Graph, rng: &mut StdRng) -> Rq {
    let pred = |rng: &mut StdRng| {
        if rng.gen_bool(0.7) {
            Predicate::parse(&format!("a0 <= {}", rng.gen_range(3..10)), g.schema()).unwrap()
        } else {
            Predicate::always_true()
        }
    };
    let pool = [
        "c0", "c1^2", "c0+", "c0^2 c1", "_^3", "_+", "c1 _", "c0 c1+",
    ];
    Rq::new(
        pred(rng),
        pred(rng),
        FRegex::parse(pool[rng.gen_range(0..pool.len())], g.alphabet()).unwrap(),
    )
}

/// Random pattern: 2–5 nodes, edges from the same regex pool.
fn random_pq(g: &Graph, rng: &mut StdRng) -> Pq {
    let mut pq = Pq::new();
    let n_nodes = rng.gen_range(2..5usize);
    for i in 0..n_nodes {
        let pred = if rng.gen_bool(0.5) {
            Predicate::parse(&format!("a0 <= {}", rng.gen_range(3..10)), g.schema()).unwrap()
        } else {
            Predicate::always_true()
        };
        pq.add_node(&format!("u{i}"), pred);
    }
    let pool = ["c0", "c1^2", "c0+", "c0^2 c1", "_^3", "_+", "c1 _"];
    for _ in 0..rng.gen_range(1..=n_nodes + 2) {
        let u = rng.gen_range(0..n_nodes);
        let v = rng.gen_range(0..n_nodes);
        let r = pool[rng.gen_range(0..pool.len())];
        pq.add_edge(u, v, FRegex::parse(r, g.alphabet()).unwrap());
    }
    pq
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]
    /// Random graphs × k ∈ {2,3,4}: RQ and PQ answers through the sharded
    /// backend equal the matrix and single-index hop backends bit for bit.
    #[test]
    fn sharded_answers_equal_hop_and_matrix(
        n in 12usize..60,
        density in 2usize..5,
        k in 2usize..5,
        seed in 0u64..10_000,
    ) {
        let g = Arc::new(rpq::graph::gen::synthetic(n, n * density, 2, 3, seed));
        let mut rng = StdRng::seed_from_u64(seed ^ 0xa11);
        let m = DistanceMatrix::build(&g);
        let hop = HopLabels::build(&g);
        let sharded = ShardedLabels::build(&g, k);
        prop_assert_eq!(sharded.sharded_graph().k(), k);

        // RQs: the §4 DM algorithm over all three probes
        for _ in 0..3 {
            let rq = random_rq(&g, &mut rng);
            let want = rq.eval_with_matrix(&g, &m);
            prop_assert_eq!(&rq.eval_with_dist(&g, &hop), &want, "hop, k={}", k);
            prop_assert_eq!(&rq.eval_with_dist(&g, &sharded), &want, "sharded, k={}", k);
        }

        // PQs: both §5 algorithms over the sharded probe, single- and
        // multi-worker refinement
        let pq = random_pq(&g, &mut rng);
        let oracle = pq.eval_naive(&g);
        prop_assert_eq!(
            &JoinMatch::eval(&pq, &g, &mut ProbeReach::new(&sharded)),
            &oracle,
            "join/sharded, k={}", k
        );
        prop_assert_eq!(
            &SplitMatch::eval(&pq, &g, &mut ProbeReach::new(&sharded)),
            &oracle,
            "split/sharded, k={}", k
        );
        prop_assert_eq!(
            &JoinMatch::eval(&pq, &g, &mut ProbeReach::with_workers(&sharded, 4)),
            &oracle,
            "join/sharded 4 workers, k={}", k
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]
    /// The degenerate partition: nodes dealt round-robin to k shards, so
    /// (nearly) every edge is cut, the local graphs are (almost) empty
    /// and the overlay carries the whole graph. Still bit-identical.
    #[test]
    fn degenerate_partitions_stay_exact(
        n in 10usize..36,
        k in 2usize..4,
        seed in 0u64..5_000,
    ) {
        let g = Arc::new(rpq::graph::gen::synthetic(n, n * 4, 2, 2, seed));
        let shard_of: Vec<u32> = (0..n).map(|v| (v % k) as u32).collect();
        let sg = Arc::new(ShardedGraph::with_partition(
            Arc::clone(&g),
            Partition::from_shard_of(shard_of, k),
        ));
        let sharded = ShardedLabels::build_on(
            Arc::clone(&sg),
            &ShardedConfig { shards: k, ..ShardedConfig::default() },
            None,
        ).unwrap();
        let m = DistanceMatrix::build(&g);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xcafe);
        for _ in 0..3 {
            let rq = random_rq(&g, &mut rng);
            prop_assert_eq!(
                &rq.eval_with_dist(&g, &sharded),
                &rq.eval_with_matrix(&g, &m),
                "degenerate k={}", k
            );
        }
        let pq = random_pq(&g, &mut rng);
        prop_assert_eq!(
            &JoinMatch::eval(&pq, &g, &mut ProbeReach::new(&sharded)),
            &pq.eval_naive(&g),
            "degenerate pq k={}", k
        );
    }
}

/// All edges cut, literally: a bipartite graph split along its two sides.
/// Local shards carry zero edges; every path threads the overlay.
#[test]
fn all_edges_cut_bipartite() {
    let mut b = GraphBuilder::new();
    let a0 = b.attr("a0");
    let nodes: Vec<NodeId> = (0..16)
        .map(|i| b.add_node(&format!("n{i}"), [(a0, (i % 10).into())]))
        .collect();
    let c0 = b.color("c0");
    let c1 = b.color("c1");
    // edges only between even and odd nodes, both directions
    for i in (0..16).step_by(2) {
        for j in (1..16).step_by(2) {
            if (i + j) % 3 == 0 {
                b.add_edge(nodes[i], nodes[j], c0);
            }
            if (i * j) % 5 == 1 {
                b.add_edge(nodes[j], nodes[i], c1);
            }
        }
    }
    let g = Arc::new(b.build());
    let shard_of: Vec<u32> = (0..16).map(|v| (v % 2) as u32).collect();
    let sg = Arc::new(ShardedGraph::with_partition(
        Arc::clone(&g),
        Partition::from_shard_of(shard_of, 2),
    ));
    assert_eq!(sg.cut_edges().len(), g.edge_count(), "every edge is cut");
    assert_eq!(sg.shard(0).edge_count() + sg.shard(1).edge_count(), 0);
    let sharded =
        ShardedLabels::build_on(Arc::clone(&sg), &ShardedConfig::default(), None).unwrap();
    let m = DistanceMatrix::build(&g);
    let mut rng = StdRng::seed_from_u64(99);
    for _ in 0..5 {
        let rq = random_rq(&g, &mut rng);
        assert_eq!(rq.eval_with_dist(&g, &sharded), rq.eval_with_matrix(&g, &m));
        let pq = random_pq(&g, &mut rng);
        assert_eq!(
            JoinMatch::eval(&pq, &g, &mut ProbeReach::new(&sharded)),
            pq.eval_naive(&g)
        );
    }
}

/// End to end through the serving layer: a `ShardedEngine` answers a
/// mixed RQ/PQ batch identically to a hop-backed `QueryEngine` over the
/// same graph, under sharded plans.
#[test]
fn sharded_engine_matches_hop_engine_on_mixed_batch() {
    let g = Arc::new(rpq::graph::gen::clustered(600, 2400, 4, 2, 3, 60, 21));
    let mut rng = StdRng::seed_from_u64(7);
    let queries: Vec<Query> = (0..12)
        .map(|i| {
            if i % 3 == 2 {
                Query::Pq(random_pq(&g, &mut rng))
            } else {
                Query::Rq(random_rq(&g, &mut rng))
            }
        })
        .collect();

    let hop_engine = QueryEngine::with_config(
        Arc::clone(&g),
        EngineConfig::builder()
            .matrix_node_limit(0)
            .workers(2)
            .build()
            .unwrap(),
    );
    hop_engine.force_hop_labels().expect("fits default budget");
    let sharded_engine = ShardedEngine::build(
        Arc::clone(&g),
        EngineConfig::builder()
            .shards(4)
            .workers(2)
            .build()
            .unwrap(),
    )
    .expect("unbudgeted build");
    assert!(sharded_engine.stats().wildcard);

    let hop_out = hop_engine.run_batch(&queries);
    let sharded_out = sharded_engine.run_batch(&queries);
    for (i, (h, s)) in hop_out.items().iter().zip(sharded_out.items()).enumerate() {
        assert_eq!(h.output, s.output, "query {i}");
        assert!(
            matches!(s.plan, Plan::RqSharded | Plan::PqJoinSharded),
            "query {i}: expected a sharded plan, got {:?}",
            s.plan
        );
    }
}
