//! Live-update acceptance at scale (ignored by default — run in release
//! via the CI scale job):
//!
//! ```text
//! cargo test --release --test live_scale -- --ignored --nocapture
//! ```
//!
//! A long mixed read/write stream against an [`UpdatableEngine`] on a
//! 50k-node clustered graph in the sharded label regime. The contract
//! under test is the update-aware index path:
//!
//! * every write batch carries the label index forward through an
//!   incremental repair (`IndexState::Repaired` on each published
//!   snapshot) instead of retiring it;
//! * per-batch repair work is a fraction of the from-scratch rebuild the
//!   retire-and-rebuild design paid on every batch (asserted against a
//!   measured rebuild of the same graph, and bounded structurally:
//!   every batch touches at most half the shards);
//! * steady-state query latency on the written-to engine stays within
//!   ~2x of a read-only engine serving the same graph;
//! * served answers are bit-identical to uncached BFS evaluation.
//!
//! When `BENCH_JSON_DIR` is set the run emits `BENCH_incremental.json`
//! (mode `timed`) in the criterion shim's report shape, so the scale job
//! leaves the same machine-readable perf trajectory as the bench-smoke
//! job's smoke-mode file.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rpq::prelude::*;
use rpq_engine::IndexState;
use std::time::{Duration, Instant};

const NODES: usize = 50_000;
const EDGES: usize = 100_000;
const SHARDS: usize = 8;
const WRITE_BATCHES: usize = 12;
const UPDATES_PER_BATCH: usize = 6;
const READS_PER_ROUND: usize = 16;

/// Concrete-color RQ workload (the planner sends these through the
/// sharded labels; wildcard atoms would run search fallbacks instead of
/// exercising the index under test).
fn workload(g: &Graph, count: usize, seed: u64) -> Vec<Query> {
    let mut rng = StdRng::seed_from_u64(seed);
    let pool = ["c0^2 c1", "c1^3", "c0 c1^2", "c2^2", "c2 c0^2"];
    (0..count)
        .map(|_| {
            let from = format!(
                "a0 = {} && a1 >= {}",
                rng.gen_range(0..10),
                rng.gen_range(4..9)
            );
            let to = format!("a1 <= {}", rng.gen_range(3..7));
            Query::Rq(Rq::new(
                Predicate::parse(&from, g.schema()).unwrap(),
                Predicate::parse(&to, g.schema()).unwrap(),
                FRegex::parse(pool[rng.gen_range(0..pool.len())], g.alphabet()).unwrap(),
            ))
        })
        .collect()
}

fn random_updates(rng: &mut StdRng, count: usize) -> Vec<Update> {
    (0..count)
        .map(|_| {
            let u = NodeId(rng.gen_range(0..NODES as u32));
            let v = NodeId(rng.gen_range(0..NODES as u32));
            let c = Color(rng.gen_range(0..3));
            if rng.gen_bool(0.5) {
                Update::Insert(u, v, c)
            } else {
                Update::Delete(u, v, c)
            }
        })
        .collect()
}

fn emit_bench_json(
    rebuild: Duration,
    avg_repair: Duration,
    read_live: Duration,
    read_only: Duration,
) {
    let Ok(dir) = std::env::var("BENCH_JSON_DIR") else {
        return;
    };
    // mirror the criterion shim's report shape (target/mode/context/benches)
    let json = format!(
        concat!(
            "{{\n",
            "  \"target\": \"incremental\",\n",
            "  \"mode\": \"timed\",\n",
            "  \"context\": {{\"graph_nodes\": \"{nodes}\", \"graph_edges\": \"{edges}\", ",
            "\"shards\": \"{shards}\", \"write_batches\": \"{batches}\", ",
            "\"updates_per_batch\": \"{upd}\"}},\n",
            "  \"benches\": [\n",
            "    {{\"name\": \"live_scale/rebuild_from_scratch\", \"median_ns\": {rebuild}}},\n",
            "    {{\"name\": \"live_scale/repair_per_batch\", \"median_ns\": {repair}}},\n",
            "    {{\"name\": \"live_scale/read16_after_writes\", \"median_ns\": {live}}},\n",
            "    {{\"name\": \"live_scale/read16_read_only\", \"median_ns\": {ro}}}\n",
            "  ]\n}}\n"
        ),
        nodes = NODES,
        edges = EDGES,
        shards = SHARDS,
        batches = WRITE_BATCHES,
        upd = UPDATES_PER_BATCH,
        rebuild = rebuild.as_nanos(),
        repair = avg_repair.as_nanos(),
        live = read_live.as_nanos(),
        ro = read_only.as_nanos(),
    );
    if std::fs::create_dir_all(&dir).is_ok() {
        let path = std::path::Path::new(&dir).join("BENCH_incremental.json");
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("warning: could not write {}: {e}", path.display());
        } else {
            println!("wrote {}", path.display());
        }
    }
}

#[test]
#[ignore = "50k-node mixed read/write stream; run in release via the CI scale job"]
fn repaired_index_serves_a_mixed_stream_at_50k() {
    let t0 = Instant::now();
    let g = rpq::graph::gen::clustered(NODES, EDGES, SHARDS, 2, 3, 5, 31);
    println!(
        "graph: {} nodes / {} edges in {:.1?}",
        g.node_count(),
        g.edge_count(),
        t0.elapsed()
    );
    assert!(g.node_count() >= 50_000);

    let config = EngineConfig::builder()
        .matrix_node_limit(0) // label regime at every size
        .hop_label_budget(0) // single-index path disabled: sharded only
        .shards(SHARDS)
        .build()
        .unwrap();
    let engine = UpdatableEngine::with_config(g.clone(), config.clone());

    // under a sustained write stream a background build never lands (each
    // publication retires it), so the stream starts from a built index —
    // the state the repair path is there to preserve. This build also
    // measures what retire-and-rebuild paid per batch.
    let t1 = Instant::now();
    engine
        .snapshot()
        .engine()
        .force_sharded_labels()
        .expect("unbudgeted build cannot fail");
    let rebuild_time = t1.elapsed();
    println!("initial sharded build (= per-batch rebuild cost): {rebuild_time:.1?}");

    // the read-only reference: same graph, same config, no writes
    let frozen = UpdatableEngine::with_config(g, config);
    frozen.snapshot().engine().force_sharded_labels().unwrap();
    let frozen_snap = frozen.snapshot();

    let mut rng = StdRng::seed_from_u64(97);
    let mut total_repair = Duration::ZERO;
    let mut total_applied = 0usize;
    let mut live_read = Duration::ZERO;
    let mut ro_read = Duration::ZERO;
    for round in 0..WRITE_BATCHES {
        let updates = random_updates(&mut rng, UPDATES_PER_BATCH);
        let report = engine.apply(&updates).unwrap();
        assert_eq!(
            report.index.state,
            IndexState::Repaired,
            "round {round}: the write stream must never retire the index"
        );
        assert!(
            report.index.shards_touched <= SHARDS / 2,
            "round {round}: repair work must stay bounded ({} shards touched)",
            report.index.shards_touched
        );
        total_repair += report.index.repair_time;
        total_applied += report.applied;

        // interleaved reads on the just-published snapshot vs. read-only
        let queries = workload(
            report.snapshot.graph(),
            READS_PER_ROUND,
            1000 + round as u64,
        );
        let t = Instant::now();
        let live_out = report.snapshot.run_batch(&queries);
        live_read += t.elapsed();
        let t = Instant::now();
        let _ = frozen_snap.run_batch(&queries);
        ro_read += t.elapsed();

        // served answers are bit-identical to uncached evaluation
        if round % 4 == 0 {
            for (i, q) in queries.iter().take(4).enumerate() {
                let Query::Rq(rq) = q else { unreachable!() };
                assert_eq!(
                    live_out.items()[i].output.as_rq().unwrap(),
                    &rq.eval_bfs(report.snapshot.graph()),
                    "round {round} query {i} diverged from BFS ground truth"
                );
            }
        }
    }
    assert!(
        total_applied > 0,
        "the stream must actually change the graph"
    );

    let avg_repair = total_repair / WRITE_BATCHES as u32;
    println!(
        "{WRITE_BATCHES} write batches ({total_applied} effective updates): \
         avg repair {avg_repair:.1?}/batch vs rebuild {rebuild_time:.1?}"
    );
    // the headline: repairing after a batch costs a fraction of the
    // from-scratch rebuild the old design paid on every batch
    assert!(
        avg_repair < rebuild_time / 2,
        "repair ({avg_repair:.1?}) must beat half the rebuild ({rebuild_time:.1?})"
    );

    println!("reads: live {live_read:.1?} vs read-only {ro_read:.1?} (totals)");
    // steady-state serving latency within ~2x of the write-free engine
    // (small absolute floor so near-zero denominators don't flake)
    let floor = Duration::from_millis(50);
    assert!(
        live_read <= ro_read * 2 + floor,
        "steady-state reads ({live_read:.1?}) exceed 2x the read-only baseline ({ro_read:.1?})"
    );

    let final_state = engine.snapshot().index_state();
    assert_eq!(final_state, IndexState::Repaired);
    emit_bench_json(
        rebuild_time,
        avg_repair,
        live_read / WRITE_BATCHES as u32,
        ro_read / WRITE_BATCHES as u32,
    );
    println!("total {:.1?}", t0.elapsed());
}
