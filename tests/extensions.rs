//! Integration tests for the extension surface: incremental maintenance,
//! the general-regex query class, the query language, graph I/O and the
//! expressiveness ladder of baselines — all through the facade.

use rpq::prelude::*;

#[test]
fn standing_query_follows_a_stream_of_updates() {
    // maintain Q2 over the Essembly graph while friendships churn
    let g = rpq::graph::gen::essembly();
    let q2_text = r#"
        node B: job = "doctor" && dsp = "cloning";
        node C: job = "biologist" && sp = "cloning";
        node D: uid = "Alice001";
        edge B -> C: fn;
        edge C -> B: fn;
        edge C -> C: fa+;
        edge B -> D: fn;
        edge C -> D: fa^2 sa^2;
    "#;
    let pq = parse_pq(q2_text, g.schema(), g.alphabet()).unwrap();
    let fnc = g.alphabet().get("fn").unwrap();
    let c1 = g.node_by_label("C1").unwrap();
    let c2 = g.node_by_label("C2").unwrap();
    let b1 = g.node_by_label("B1").unwrap();

    let mut dg = DynamicGraph::new(g);
    let mut standing = IncrementalMatcher::new(pq, &dg);
    assert_eq!(standing.matches(1).len(), 1, "initially only C3 matches C");

    // C1 picks a fight with B1 → C1 joins; then B1 and C2 too
    let updates = [
        Update::Insert(c1, b1, fnc),
        Update::Insert(c2, b1, fnc),
        Update::Delete(c1, b1, fnc),
    ];
    for upd in updates {
        let eff = dg.apply(&[upd]);
        standing.on_update(&dg, &eff);
        assert_eq!(
            standing.result(&dg),
            standing.full_reeval(&dg),
            "incremental answer must track full re-evaluation after {upd:?}"
        );
    }
}

#[test]
fn general_regex_strictly_extends_f() {
    let g = rpq::graph::gen::essembly();
    // "(fa | sa)+ fn": mixed allies chains then one nemeses edge —
    // not expressible in F (no proper color unions)
    let grq = GRq::new(
        Predicate::parse("job = \"biologist\"", g.schema()).unwrap(),
        Predicate::parse("job = \"doctor\"", g.schema()).unwrap(),
        GRegex::parse("(fa | sa)+ fn", g.alphabet()).unwrap(),
    );
    let general = grq.eval(&g);
    assert!(!general.is_empty());
    // it sits between the pure-fa F query and the wildcard relaxation
    let tight = Rq::new(
        grq.from.clone(),
        grq.to.clone(),
        FRegex::parse("fa+ fn", g.alphabet()).unwrap(),
    )
    .eval_bfs(&g);
    let loose = Rq::new(
        grq.from.clone(),
        grq.to.clone(),
        FRegex::parse("_+ fn", g.alphabet()).unwrap(),
    )
    .eval_bfs(&g);
    for &(x, y) in tight.as_slice() {
        assert!(general.contains(x, y), "general must cover the F query");
    }
    for &(x, y) in general.as_slice() {
        assert!(loose.contains(x, y), "wildcard must cover general");
    }
}

#[test]
fn graph_io_preserves_query_answers() {
    let g = rpq::graph::gen::terrorism_like(11);
    let text = rpq::graph::io::graph_to_string(&g);
    let back = rpq::graph::io::graph_from_str(&text).unwrap();
    let rq_src = |g: &Graph| {
        Rq::new(
            Predicate::parse("tt = \"Business\"", g.schema()).unwrap(),
            Predicate::parse("tt = \"Military\"", g.schema()).unwrap(),
            FRegex::parse("ic^2 dc", g.alphabet()).unwrap(),
        )
    };
    let before = rq_src(&g).eval_bfs(&g);
    let after = rq_src(&back).eval_bfs(&back);
    // labels are preserved, so compare results via labels
    let to_labels = |g: &Graph, r: &RqResult| -> Vec<(String, String)> {
        r.as_slice()
            .iter()
            .map(|&(x, y)| (g.label(x).to_owned(), g.label(y).to_owned()))
            .collect()
    };
    assert_eq!(to_labels(&g, &before), to_labels(&back, &after));
    assert!(!before.is_empty() || before.is_empty()); // result may be empty; equality is the point
}

#[test]
fn expressiveness_ladder() {
    // plain simulation ⊆ PQ matches ⊆ bounded simulation, on a pattern
    // where the three genuinely differ
    let g = rpq::graph::gen::essembly();
    let m = DistanceMatrix::build(&g);
    let mut pq = Pq::new();
    let c = pq.add_node(
        "C",
        Predicate::parse("job = \"biologist\"", g.schema()).unwrap(),
    );
    let b = pq.add_node(
        "B",
        Predicate::parse("job = \"doctor\"", g.schema()).unwrap(),
    );
    pq.add_edge(c, b, FRegex::parse("fa^2 fn", g.alphabet()).unwrap());

    let plain = plain_sim_match(&pq, &g); // one fa hop required — nobody matches
    let full = JoinMatch::eval(&pq, &g, &mut MatrixReach::new(&m));
    let relaxed = bounded_sim_match(&pq, &g, &mut MatrixReach::new(&m));

    let pairs = |r: &PqResult| -> Vec<NodeId> { r.node_matches(0).to_vec() };
    for x in pairs(&plain) {
        assert!(pairs(&full).contains(&x));
    }
    for x in pairs(&full) {
        assert!(pairs(&relaxed).contains(&x));
    }
    assert!(pairs(&full).len() >= 2, "the PQ finds C1, C2");
    assert!(
        pairs(&relaxed).len() >= pairs(&full).len(),
        "color-blind relaxation over-reports"
    );
}

#[test]
fn cli_language_roundtrip_via_facade() {
    let g = rpq::graph::gen::essembly();
    let mut pq = Pq::new();
    let a = pq.add_node(
        "A",
        Predicate::parse("sp = \"cloning\"", g.schema()).unwrap(),
    );
    let b = pq.add_node("B", Predicate::always_true());
    pq.add_edge(a, b, FRegex::parse("fa^2 sn+", g.alphabet()).unwrap());
    let text = format_pq(&pq, g.schema(), g.alphabet());
    let again = parse_pq(&text, g.schema(), g.alphabet()).unwrap();
    assert_eq!(pq, again);
}
