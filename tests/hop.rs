//! Integration tests for the hop-label (`Plan::RqHop`) serving path: the
//! planner picks it automatically over the matrix node limit, its answers
//! are bit-identical to search, and under a live update stream every
//! post-update query through the per-version hop index matches full
//! re-evaluation on the new graph.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rpq::prelude::*;
use std::sync::Arc;

const NODES: usize = 250;
const COLORS: u8 = 3;

fn test_graph(seed: u64) -> Graph {
    rpq::graph::gen::synthetic(NODES, 4 * NODES, 2, COLORS as usize, seed)
}

/// Over the matrix limit, under the label budget: the RqHop regime.
fn over_limit_config() -> EngineConfig {
    EngineConfig::builder()
        .matrix_node_limit(0)
        .workers(2)
        .build()
        .unwrap()
}

fn queries(g: &Graph) -> Vec<Query> {
    ["c0^2 c1", "c1 c2", "c0+", "_^2", "c2^3 _", "c0"]
        .iter()
        .enumerate()
        .map(|(i, re)| {
            Query::Rq(Rq::new(
                Predicate::parse(&format!("a0 <= {}", 3 + i as i64), g.schema()).unwrap(),
                Predicate::parse(&format!("a1 >= {}", 2 + i as i64), g.schema()).unwrap(),
                FRegex::parse(re, g.alphabet()).unwrap(),
            ))
        })
        .collect()
}

fn reference(q: &Query, g: &Graph) -> RqResult {
    match q {
        Query::Rq(rq) => rq.eval_bfs(g),
        Query::Pq(_) => unreachable!("RQ-only workload"),
    }
}

#[test]
fn planner_selects_hop_over_the_limit_and_answers_match_search() {
    let g = Arc::new(test_graph(77));
    let engine = QueryEngine::with_config(Arc::clone(&g), over_limit_config());
    let labels = engine.force_hop_labels().expect("fits default budget");
    assert!(labels.is_exact());
    assert!(labels.bytes() < DistanceMatrix::bytes_for(&g));

    let qs = queries(&g);
    let batch = engine.run_batch(&qs);
    for (item, q) in batch.items().iter().zip(&qs) {
        assert_eq!(item.plan, Plan::RqHop, "automatic selection");
        assert_eq!(item.output.as_rq().unwrap(), &reference(q, &g));
    }
}

/// Acceptance: under a stream of ≥ 10 update batches, every post-update
/// query evaluated through the (per-version, rebuilt) hop-label path
/// equals full re-evaluation on the updated graph — and while a version's
/// index has not been built yet, the engine serves the same answers
/// through its search fallback.
#[test]
fn hop_path_tracks_update_stream() {
    let mut rng = StdRng::seed_from_u64(42);
    let engine = UpdatableEngine::with_config(test_graph(9), over_limit_config());

    for round in 0..12 {
        let updates: Vec<Update> = (0..30)
            .filter_map(|_| {
                let x = NodeId(rng.gen_range(0..NODES as u32));
                let y = NodeId(rng.gen_range(0..NODES as u32));
                if x == y {
                    return None;
                }
                let c = Color(rng.gen_range(0..COLORS));
                Some(if rng.gen_bool(0.5) {
                    Update::Insert(x, y, c)
                } else {
                    Update::Delete(x, y, c)
                })
            })
            .collect();
        let report = engine.apply(&updates).unwrap();
        let snap = report.snapshot;
        let g = snap.graph().clone();
        let qs = queries(&g);

        // before this version's index lands: fallback plans, same answers
        let stale = snap.run_batch(&qs);
        for (item, q) in stale.items().iter().zip(&qs) {
            assert_eq!(
                item.output.as_rq().unwrap(),
                &reference(q, &g),
                "round {round} stale"
            );
        }

        // force the per-version build (deterministic RqHop), re-ask
        snap.engine().force_hop_labels().expect("fits budget");
        let indexed = snap.run_batch(&qs);
        for (item, q) in indexed.items().iter().zip(&qs) {
            assert_eq!(item.plan, Plan::RqHop, "round {round}");
            assert_eq!(
                item.output.as_rq().unwrap(),
                &reference(q, &g),
                "round {round} through hop labels"
            );
        }
    }
}

/// A reader pinning an old snapshot keeps its own (version-consistent)
/// index; publishing new versions neither blocks it nor changes what it
/// serves.
#[test]
fn pinned_snapshot_keeps_its_own_index_version() {
    let engine = UpdatableEngine::with_config(test_graph(3), over_limit_config());
    let pinned = engine.snapshot();
    pinned.engine().force_hop_labels().unwrap();
    let g0 = pinned.graph().clone();
    let qs = queries(&g0);
    let before: Vec<_> = qs.iter().map(|q| pinned.run_query(q)).collect();

    // churn a few versions
    let c = Color(0);
    for i in 0..3u32 {
        engine
            .apply(&[Update::Insert(NodeId(i), NodeId(i + 50), c)])
            .unwrap();
    }
    assert!(engine.version() > pinned.version());
    for (q, want) in qs.iter().zip(&before) {
        assert_eq!(&pinned.run_query(q), want, "pinned answers drifted");
    }
    // and the current version answers against the *new* graph
    let now = engine.snapshot();
    now.engine().force_hop_labels().unwrap();
    let g1 = now.graph().clone();
    for q in &qs {
        assert_eq!(now.run_query(q).as_rq().unwrap(), &reference(q, &g1));
    }
}
