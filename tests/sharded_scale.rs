//! Scale acceptance for the sharded backend (ignored by default — run in
//! release via the CI scale job):
//!
//! ```text
//! cargo test --release --test sharded_scale -- --ignored --nocapture
//! ```
//!
//! On a 100k-node clustered graph with `shards = 4`, a mixed 64-query
//! RQ/PQ batch through the [`ShardedEngine`] must return answers
//! **identical** to the unsharded hop-label backend, with every shard's
//! label footprint within the configured per-shard memory budget. Build
//! time, edge-cut ratio and batch timings are printed for the perf
//! trajectory (BENCH_sharded.json carries the bench-side numbers).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rpq::prelude::*;
use std::sync::Arc;
use std::time::Instant;

const NODES: usize = 100_000;
const EDGES: usize = 300_000;
const SHARDS: usize = 4;
/// Per-shard label budget, a **hard cap**: a concrete layer exceeding
/// it fails the whole construction; the wildcard layer exceeding it is
/// dropped gracefully. Random intra-cluster topology is the worst case
/// for pruned labelings (few natural hubs), and at this scale the
/// wildcard union layer exceeds any practical budget on *both* backends
/// (the unsharded 100k builds measured the same, see `crates/bench`'s
/// index bench) — so the budget is sized for the concrete layers with
/// ample headroom, the workload probes concrete colors, and the dropped
/// wildcard is asserted as the expected degradation.
const SHARD_BUDGET: usize = 64 << 20;

/// Mixed workload: selective sources, mostly bounded quantifiers (the
/// paper's regime), a sprinkle of unbounded atoms. Concrete colors
/// only — at this scale the wildcard layer is budget-dropped on every
/// backend, so `_` queries would (correctly) run search fallbacks
/// rather than exercise the index under test.
fn workload(g: &Graph, count: usize, seed: u64) -> Vec<Query> {
    let mut rng = StdRng::seed_from_u64(seed);
    let rq_pool = [
        "c0^2 c1", "c1^3", "c0 c1^2", "c2^3", "c2^2 c0", "c0+", "c1 c2^2",
    ];
    let sel = |rng: &mut StdRng| {
        format!(
            "a0 = {} && a1 >= {}",
            rng.gen_range(0..10),
            rng.gen_range(4..9)
        )
    };
    (0..count)
        .map(|i| {
            if i % 4 == 3 {
                // a small selective pattern, one cycle in half of them
                let mut pq = Pq::new();
                let a = pq.add_node("a", Predicate::parse(&sel(&mut rng), g.schema()).unwrap());
                let b = pq.add_node(
                    "b",
                    Predicate::parse(&format!("a0 <= {}", rng.gen_range(2..5)), g.schema())
                        .unwrap(),
                );
                let c = pq.add_node("c", Predicate::parse(&sel(&mut rng), g.schema()).unwrap());
                pq.add_edge(a, b, FRegex::parse("c0^2", g.alphabet()).unwrap());
                pq.add_edge(b, c, FRegex::parse("c1^2 c0", g.alphabet()).unwrap());
                if i % 8 == 7 {
                    pq.add_edge(c, a, FRegex::parse("c2^3", g.alphabet()).unwrap());
                }
                Query::Pq(pq)
            } else {
                let re = rq_pool[rng.gen_range(0..rq_pool.len())];
                Query::Rq(Rq::new(
                    Predicate::parse(&sel(&mut rng), g.schema()).unwrap(),
                    Predicate::parse(&format!("a1 <= {}", rng.gen_range(3..7)), g.schema())
                        .unwrap(),
                    FRegex::parse(re, g.alphabet()).unwrap(),
                ))
            }
        })
        .collect()
}

#[test]
#[ignore = "builds two 100k-node indices; run in release via the CI scale job"]
fn sharded_batch_matches_hop_backend_at_100k() {
    let t0 = Instant::now();
    let g = Arc::new(rpq::graph::gen::clustered(
        NODES, EDGES, SHARDS, 3, 3, 2, 42,
    ));
    println!(
        "graph: {} nodes / {} edges in {:.1?}",
        g.node_count(),
        g.edge_count(),
        t0.elapsed()
    );
    assert!(g.node_count() >= 100_000);

    // the sharded stack: partition + 4 parallel per-shard builds + overlay
    let sharded_engine = ShardedEngine::build(
        Arc::clone(&g),
        EngineConfig::builder()
            .shards(SHARDS)
            .shard_memory_budget(SHARD_BUDGET)
            .build()
            .unwrap(),
    )
    .expect("per-shard builds fit the budget");
    let stats = sharded_engine.stats();
    println!(
        "sharded build: {:.1?} — {stats}",
        sharded_engine.build_time()
    );
    println!(
        "edge-cut ratio {:.3}%, per-shard label bytes {:?}, overlay {} KiB",
        100.0 * stats.edge_cut_ratio,
        stats.shard_bytes,
        stats.overlay_bytes / 1024
    );
    assert_eq!(stats.shards, SHARDS);
    assert!(
        !stats.wildcard,
        "expected the wildcard layer dropped at this scale (as on the unsharded backend)"
    );
    for c in g.alphabet().colors() {
        assert!(
            sharded_engine.labels().has_layer(c),
            "every concrete color must stay covered"
        );
    }
    for (s, &bytes) in stats.shard_bytes.iter().enumerate() {
        assert!(
            bytes <= SHARD_BUDGET,
            "shard {s}: {bytes} bytes exceeds the per-shard budget {SHARD_BUDGET}"
        );
    }

    // the unsharded reference: one hop-label index over the whole graph
    let hop_engine = QueryEngine::with_config(
        Arc::clone(&g),
        EngineConfig::builder()
            .matrix_node_limit(0)
            // same reading as the per-shard budget: concrete layers fit
            // easily, the wildcard attempt aborts at the cap
            .hop_label_budget(64 << 20)
            .build()
            .unwrap(),
    );
    let t1 = Instant::now();
    let hop = hop_engine.force_hop_labels().expect("reference build fits");
    println!(
        "unsharded reference build: {:.1?}, {} KiB",
        t1.elapsed(),
        hop.bytes() / 1024
    );

    let queries = workload(&g, 64, 7);
    let n_pqs = queries.iter().filter(|q| matches!(q, Query::Pq(_))).count();
    println!("batch: {} queries ({} PQs)", queries.len(), n_pqs);

    let t2 = Instant::now();
    let hop_out = hop_engine.run_batch(&queries);
    println!("hop backend batch: {:.1?}", t2.elapsed());
    let t3 = Instant::now();
    let sharded_out = sharded_engine.run_batch(&queries);
    println!("sharded backend batch: {:.1?}", t3.elapsed());

    let mut sharded_plans = 0usize;
    for (i, (h, s)) in hop_out.items().iter().zip(sharded_out.items()).enumerate() {
        assert_eq!(h.output, s.output, "query {i} diverged across backends");
        if matches!(s.plan, Plan::RqSharded | Plan::PqJoinSharded) {
            sharded_plans += 1;
        }
    }
    assert_eq!(
        sharded_plans,
        queries.len(),
        "every query must run a sharded plan"
    );
    println!(
        "OK: 64-query batch identical across backends ({} matches total)",
        sharded_out
            .items()
            .iter()
            .map(|i| i.output.match_count())
            .sum::<usize>()
    );
}
