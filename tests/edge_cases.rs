//! Edge-case and degenerate-input tests across the whole stack: empty and
//! single-node graphs, self-loop-only topology, saturated alphabets,
//! unsatisfiable and trivial predicates, and adversarial patterns.

use rpq::prelude::*;

fn empty_graph() -> Graph {
    GraphBuilder::new().build()
}

#[test]
fn queries_on_the_empty_graph() {
    let mut b = GraphBuilder::new();
    b.attr("x");
    b.color("c");
    let g = b.build();
    let m = DistanceMatrix::build(&g);
    let rq = Rq::new(
        Predicate::always_true(),
        Predicate::always_true(),
        FRegex::parse("c", g.alphabet()).unwrap(),
    );
    assert!(rq.eval_bfs(&g).is_empty());
    assert!(rq.eval_with_matrix(&g, &m).is_empty());
    assert!(rq.eval_bibfs(&g).is_empty());

    let mut pq = Pq::new();
    let a = pq.add_node("a", Predicate::always_true());
    let b2 = pq.add_node("b", Predicate::always_true());
    pq.add_edge(a, b2, FRegex::parse("c", g.alphabet()).unwrap());
    assert!(JoinMatch::eval(&pq, &g, &mut MatrixReach::new(&m)).is_empty());
    assert!(SplitMatch::eval(&pq, &g, &mut CachedReach::new(16)).is_empty());

    // the truly empty graph (no colors either) at least survives stats
    let e = empty_graph();
    assert_eq!(e.node_count(), 0);
    assert_eq!(DistanceMatrix::bytes_for(&e), 0);
}

#[test]
fn single_node_self_loop_world() {
    // one node, one self-loop: every cyclic regex matches, acyclic beyond
    // budget does not
    let mut b = GraphBuilder::new();
    let x = b.add_node("x", []);
    let c = b.color("c");
    b.add_edge(x, x, c);
    let g = b.build();
    let m = DistanceMatrix::build(&g);
    for (re, expect) in [("c", true), ("c^5", true), ("c+", true), ("c c c", true)] {
        let rq = Rq::new(
            Predicate::always_true(),
            Predicate::always_true(),
            FRegex::parse(re, g.alphabet()).unwrap(),
        );
        assert_eq!(!rq.eval_bfs(&g).is_empty(), expect, "{re} (bfs)");
        assert_eq!(!rq.eval_with_matrix(&g, &m).is_empty(), expect, "{re} (dm)");
        assert_eq!(!rq.eval_bibfs(&g).is_empty(), expect, "{re} (bibfs)");
    }

    // cyclic pattern on the self-loop world
    let mut pq = Pq::new();
    let a = pq.add_node("a", Predicate::always_true());
    pq.add_edge(a, a, FRegex::parse("c+", g.alphabet()).unwrap());
    let res = JoinMatch::eval(&pq, &g, &mut MatrixReach::new(&m));
    assert_eq!(res.node_matches(0), &[x]);
}

#[test]
fn two_node_cycle_against_plus() {
    // x <-> y: both nodes lie on a c-cycle; (x,x) ⊨ c+ via the 2-cycle
    let mut b = GraphBuilder::new();
    let x = b.add_node("x", []);
    let y = b.add_node("y", []);
    let c = b.color("c");
    b.add_edge(x, y, c);
    b.add_edge(y, x, c);
    let g = b.build();
    let m = DistanceMatrix::build(&g);
    let rq = Rq::new(
        Predicate::always_true(),
        Predicate::always_true(),
        FRegex::parse("c+", g.alphabet()).unwrap(),
    );
    let res = rq.eval_with_matrix(&g, &m);
    assert_eq!(res.len(), 4, "all four ordered pairs incl. (x,x),(y,y)");
    assert_eq!(res, rq.eval_bfs(&g));
    assert_eq!(res, rq.eval_bibfs(&g));
    // but c^1 only admits the two direct edges
    let one = Rq::new(
        Predicate::always_true(),
        Predicate::always_true(),
        FRegex::parse("c", g.alphabet()).unwrap(),
    );
    assert_eq!(one.eval_with_matrix(&g, &m).len(), 2);
}

#[test]
fn unsatisfiable_predicate_combinations() {
    let g = rpq::graph::gen::essembly();
    let m = DistanceMatrix::build(&g);
    // contradictory conjunction (no node has both jobs)
    let p = Predicate::parse("job = \"doctor\" && job = \"biologist\"", g.schema()).unwrap();
    let rq = Rq::new(
        p.clone(),
        Predicate::always_true(),
        FRegex::parse("_+", g.alphabet()).unwrap(),
    );
    assert!(rq.eval_with_matrix(&g, &m).is_empty());

    // a pattern node with the contradiction empties the whole answer
    let mut pq = Pq::new();
    let a = pq.add_node("a", p);
    let b = pq.add_node("b", Predicate::always_true());
    pq.add_edge(b, a, FRegex::parse("_", g.alphabet()).unwrap());
    assert!(JoinMatch::eval(&pq, &g, &mut MatrixReach::new(&m)).is_empty());
    assert!(SplitMatch::eval(&pq, &g, &mut MatrixReach::new(&m)).is_empty());
    assert!(pq.eval_naive(&g).is_empty());
}

#[test]
fn pattern_larger_than_graph() {
    // more pattern nodes than data nodes: simulation is fine with that
    // (several pattern nodes may share one data node), isomorphism is not
    let mut b = GraphBuilder::new();
    let x = b.add_node("x", []);
    let y = b.add_node("y", []);
    let c = b.color("c");
    b.add_edge(x, y, c);
    b.add_edge(y, x, c);
    let g = b.build();
    let m = DistanceMatrix::build(&g);
    let mut pq = Pq::new();
    let nodes: Vec<_> = (0..5)
        .map(|i| pq.add_node(&format!("u{i}"), Predicate::always_true()))
        .collect();
    let re = FRegex::parse("c", g.alphabet()).unwrap();
    for w in nodes.windows(2) {
        pq.add_edge(w[0], w[1], re.clone());
    }
    let res = JoinMatch::eval(&pq, &g, &mut MatrixReach::new(&m));
    assert!(
        !res.is_empty(),
        "simulation folds the chain onto the 2-cycle"
    );
    let iso = rpq::core::baseline::subiso_match(&pq, &g, 1 << 16);
    assert!(iso.complete);
    assert_eq!(iso.embeddings, 0, "no injective embedding exists");
}

#[test]
fn bound_larger_than_graph_diameter() {
    let g = rpq::graph::gen::essembly();
    let m = DistanceMatrix::build(&g);
    // k = 1000 behaves exactly like +  on a 7-node graph
    let big = Rq::new(
        Predicate::always_true(),
        Predicate::always_true(),
        FRegex::parse("fa^1000", g.alphabet()).unwrap(),
    );
    let plus = Rq::new(
        Predicate::always_true(),
        Predicate::always_true(),
        FRegex::parse("fa+", g.alphabet()).unwrap(),
    );
    assert_eq!(
        big.eval_with_matrix(&g, &m).pairs(),
        plus.eval_with_matrix(&g, &m).pairs()
    );
    assert_eq!(big.eval_bfs(&g).pairs(), plus.eval_bfs(&g).pairs());
}

#[test]
fn parallel_multi_colored_edges_between_one_pair() {
    // u → v under every color: each single-color RQ matches via its color
    let mut b = GraphBuilder::new();
    let u = b.add_node("u", []);
    let v = b.add_node("v", []);
    let colors: Vec<_> = (0..6).map(|i| b.color(&format!("k{i}"))).collect();
    for &c in &colors {
        b.add_edge(u, v, c);
    }
    let g = b.build();
    let m = DistanceMatrix::build(&g);
    for i in 0..6 {
        let rq = Rq::new(
            Predicate::always_true(),
            Predicate::always_true(),
            FRegex::parse(&format!("k{i}"), g.alphabet()).unwrap(),
        );
        assert_eq!(rq.eval_with_matrix(&g, &m).pairs(), vec![(u, v)]);
    }
    // a 2-atom chain cannot be satisfied by parallel edges (needs 2 hops)
    let chain = Rq::new(
        Predicate::always_true(),
        Predicate::always_true(),
        FRegex::parse("k0 k1", g.alphabet()).unwrap(),
    );
    assert!(chain.eval_with_matrix(&g, &m).is_empty());
    assert!(chain.eval_bfs(&g).is_empty());
}

#[test]
fn minimize_handles_disconnected_and_isolated_patterns() {
    let mut schema = Schema::new();
    schema.intern("t");
    let al = Alphabet::from_names(["c"]);
    // two disconnected identical components: they merge
    let p = Predicate::parse("t = 1", &schema).unwrap();
    let mut q = Pq::new();
    let a1 = q.add_node("a1", p.clone());
    let b1 = q.add_node("b1", Predicate::always_true());
    let a2 = q.add_node("a2", p.clone());
    let b2 = q.add_node("b2", Predicate::always_true());
    let re = FRegex::parse("c", &al).unwrap();
    q.add_edge(a1, b1, re.clone());
    q.add_edge(a2, b2, re);
    let slim = minimize(&q);
    assert!(rpq::core::pq_equivalent(&slim, &q));
    assert!(slim.size() <= 4, "duplicate component must fold: {slim:?}");
}

#[test]
fn incremental_noop_updates() {
    let g = rpq::graph::gen::essembly();
    let c1 = g.node_by_label("C1").unwrap();
    let b1 = g.node_by_label("B1").unwrap();
    let sn = g.alphabet().get("sn").unwrap();
    let fa = g.alphabet().get("fa").unwrap();
    let mut dg = DynamicGraph::new(g);
    let mut pq = Pq::new();
    let a = pq.add_node(
        "a",
        Predicate::parse("job = \"biologist\"", dg.graph().schema()).unwrap(),
    );
    let b = pq.add_node(
        "b",
        Predicate::parse("job = \"doctor\"", dg.graph().schema()).unwrap(),
    );
    pq.add_edge(
        a,
        b,
        FRegex::parse("fa^2 fn", dg.graph().alphabet()).unwrap(),
    );
    let mut inc = IncrementalMatcher::new(pq, &dg);
    let before = inc.result(&dg);
    // deleting a non-existent edge and re-inserting an existing one are
    // both no-ops: the standing answer must not move
    let eff = dg.apply(&[Update::Delete(c1, b1, sn)]);
    assert!(eff.is_empty());
    inc.on_update(&dg, &eff);
    assert_eq!(inc.result(&dg), before);
    let c1c2 = (
        dg.graph().node_by_label("C1").unwrap(),
        dg.graph().node_by_label("C2").unwrap(),
    );
    let eff = dg.apply(&[Update::Insert(c1c2.0, c1c2.1, fa)]);
    assert!(eff.is_empty(), "edge already exists");
    inc.on_update(&dg, &eff);
    assert_eq!(inc.result(&dg), before);
}
